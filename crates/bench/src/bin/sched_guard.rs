//! CI perf-regression guard for the malleable scheduling pass.
//!
//! Re-measures the loaded 128-node `sched_scale/malleable_pass_128n` case
//! (the exact snapshot the bench uses, via `drom_bench::sched_fixtures`),
//! its model-aware twin `malleable_model_pass_128n` (the same view with
//! calibrated speedup curves attached), and the 1024-node
//! `malleable_reservation_pass_1024n` drain-forecast case (the
//! release-timeline walk that replaced the per-attempt replay), plus the
//! mega-shape queue-churn events/sec replay (the dirty-tracked production
//! path, end to end), and fails — exit code 1 — when any exceeds its
//! committed `BENCH_sched.json` baseline by more than the given factor
//! (default 2×, `--factor F` overrides).
//!
//! The committed baseline is an absolute wall-clock number from one machine;
//! CI runners are arbitrarily faster or slower. To keep the threshold about
//! *code*, not machine speed, the guard also times the preserved pre-index
//! reference (`malleable_scan_pass_128n`) in the same process and scales the
//! limit by `scan_measured / scan_baseline` — a runner that is 3× slower
//! gets a 3× wider absolute limit, but an indexed pass that regresses
//! relative to the scan reference (the O(queue × nodes × running) class this
//! guard exists for: pre-index was ~30× the baseline) still fails.
//!
//! Run with: `cargo run --release -p drom-bench --bin sched_guard`
//! (`--baseline path/to/BENCH_sched.json` overrides the default location).

use std::time::Instant;

use drom_bench::sched_fixtures::{
    loaded_state, loaded_state_model, reservation_stress_state, NODE_CPUS,
};
use drom_sim::{queue_churn_trace, ClusterSim};
use drom_slurm::policy::{ClusterView, SchedIndex, SchedulerPolicy};
use drom_slurm::{MalleablePolicy, MalleableScanPolicy};

const INDEXED_KEY: &str = "sched_scale/malleable_pass_128n";
const MODEL_KEY: &str = "sched_scale/malleable_model_pass_128n";
const RESERVATION_KEY: &str = "sched_scale/malleable_reservation_pass_1024n";
const SCAN_KEY: &str = "sched_scale/malleable_scan_pass_128n";
/// Whole-trace replay of the queue-churn trace at the mega node count with
/// the *production* (dirty-tracked) malleable policy — the only key where
/// state evolves between passes, so the probe memo and admission order are
/// actually exercised. Stored as mean ns **per event**.
const EVENTS_KEY: &str = "sched_guard/queue_churn_events_mega";

/// Events-per-second probe: one end-to-end replay of a queue-heavy trace on
/// the mega node count. Returns (ns per event, events processed).
fn measure_events() -> (f64, u64) {
    let trace = queue_churn_trace(2018, 3_000, 10_000, 16, 1.3).generate();
    let sim = ClusterSim::new(10_000, 16);
    let started = Instant::now();
    let report = sim
        .run(Box::new(MalleablePolicy::default()), &trace)
        .expect("queue-churn replay failed");
    let elapsed = started.elapsed().as_nanos() as f64;
    (
        elapsed / report.events_processed as f64,
        report.events_processed,
    )
}

/// Extracts `"<key>": { "mean_ns": N }` from the **`"benches"` section** of
/// the baseline JSON. The vendored serde stand-in has no JSON parser, so
/// this does the one lookup the guard needs by string scanning — anchored
/// past the `"benches"` key because the same bench names also appear in the
/// historical `pr3_baseline` section, whose numbers must never feed the
/// limit.
fn baseline_mean_ns(json: &str, key: &str) -> Option<u64> {
    let benches = json.find("\"benches\"")?;
    let at = benches + json[benches..].find(&format!("\"{key}\""))?;
    let rest = &json[at..];
    let mean = rest.find("\"mean_ns\"")?;
    let digits: String = rest[mean + "\"mean_ns\"".len()..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Mean ns of one `schedule` call over `iters` timed iterations (after a
/// short warm-up).
fn measure(
    policy: &mut dyn SchedulerPolicy,
    view: &ClusterView<'_>,
    queue: &[drom_slurm::QueuedJob],
    iters: u32,
) -> f64 {
    for _ in 0..iters.div_ceil(10).max(3) {
        std::hint::black_box(policy.schedule(view, queue, 1_000));
    }
    let started = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(policy.schedule(view, queue, 1_000));
    }
    started.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let baseline_path = arg("--baseline").unwrap_or_else(|| "BENCH_sched.json".to_string());
    let factor: f64 = arg("--factor").map_or(2.0, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("invalid value {v:?} for --factor"))
    });
    let json = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let indexed_baseline = baseline_mean_ns(&json, INDEXED_KEY)
        .unwrap_or_else(|| panic!("no {INDEXED_KEY} mean_ns in {baseline_path}"));
    let model_baseline = baseline_mean_ns(&json, MODEL_KEY)
        .unwrap_or_else(|| panic!("no {MODEL_KEY} mean_ns in {baseline_path}"));
    let reservation_baseline = baseline_mean_ns(&json, RESERVATION_KEY)
        .unwrap_or_else(|| panic!("no {RESERVATION_KEY} mean_ns in {baseline_path}"));
    let scan_baseline = baseline_mean_ns(&json, SCAN_KEY)
        .unwrap_or_else(|| panic!("no {SCAN_KEY} mean_ns in {baseline_path}"));
    let events_baseline = baseline_mean_ns(&json, EVENTS_KEY)
        .unwrap_or_else(|| panic!("no {EVENTS_KEY} mean_ns in {baseline_path}"));

    let (free, running, queue) = loaded_state(128);
    let index = SchedIndex::rebuild(&free, &running);
    let view = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free,
        running: &running,
        index: Some(&index),
        order: None,
    };
    let view_no_index = ClusterView {
        index: None,
        ..view
    };
    let (free_m, running_m, queue_m) = loaded_state_model(128);
    let index_m = SchedIndex::rebuild(&free_m, &running_m);
    let view_m = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free_m,
        running: &running_m,
        index: Some(&index_m),
        order: None,
    };
    let (free_r, running_r, queue_r) = reservation_stress_state(1024);
    let index_r = SchedIndex::rebuild(&free_r, &running_r);
    let view_r = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free_r,
        running: &running_r,
        index: Some(&index_r),
        order: None,
    };

    // The latency keys use the always-probe variant: `measure` replays one
    // frozen view, and the production probe memo would collapse every
    // iteration after the first into a skip-path no-op. The dirty-tracked
    // production path is what the events/sec key below measures, end to end.
    let indexed_ns = measure(&mut MalleablePolicy::always_probe(), &view, &queue, 200);
    let model_ns = measure(&mut MalleablePolicy::always_probe(), &view_m, &queue_m, 200);
    let reservation_ns = measure(&mut MalleablePolicy::always_probe(), &view_r, &queue_r, 200);
    let scan_ns = measure(
        &mut MalleableScanPolicy::default(),
        &view_no_index,
        &queue,
        20,
    );
    let (events_ns, events) = measure_events();
    println!(
        "sched_guard: queue-churn mega replay {events} events at {events_ns:.0} ns/event \
         ({:.0} events/s)",
        1e9 / events_ns
    );

    // How much slower/faster this machine is than the one that recorded the
    // baseline, judged by the reference implementation (whose cost this PR
    // class does not change).
    let machine = scan_ns / scan_baseline as f64;
    println!(
        "sched_guard: reference scan {scan_ns:.0} ns (baseline {scan_baseline} ns, \
         machine speed x{machine:.2})"
    );
    let mut failed = false;
    for (key, measured, baseline) in [
        (INDEXED_KEY, indexed_ns, indexed_baseline),
        (MODEL_KEY, model_ns, model_baseline),
        (RESERVATION_KEY, reservation_ns, reservation_baseline),
        (EVENTS_KEY, events_ns, events_baseline),
    ] {
        let limit_ns = baseline as f64 * factor * machine;
        println!(
            "sched_guard: {key} measured {measured:.0} ns (baseline {baseline} ns); \
             limit {limit_ns:.0} ns ({factor:.1}x)"
        );
        if measured > limit_ns {
            eprintln!(
                "sched_guard: FAIL — {key} is {:.1}x the committed baseline \
                 after machine-speed calibration",
                measured / (baseline as f64 * machine)
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("sched_guard: OK");
}
