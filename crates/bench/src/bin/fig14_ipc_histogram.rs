//! Figure 14: histograms of instructions-per-cycle for NEST and CoreNeuron in
//! the high-priority use case, Serial scenario vs DROM scenario.
//!
//! The paper's takeaway is that the two scenarios are "comparable in terms of
//! IPC", with the DROM runs showing a slightly *higher* most-frequent IPC for
//! the threads that run with fewer OpenMP threads per rank. The harness prints
//! one histogram per (job, scenario) and the most-frequent-IPC summary.
//!
//! Run with: `cargo run -p drom-bench --bin fig14_ipc_histogram`

use drom_bench::{emit, use_case2};
use drom_metrics::{Histogram, Scenario, Table};
use drom_sim::ipc_samples;

fn main() {
    let (workload, serial, drom) = use_case2();

    let mut summary = Table::new(
        "Figure 14: IPC summary (most frequent / mean)",
        &["job", "scenario", "mode IPC", "mean IPC", "samples"],
    );

    for (scenario, result) in [(Scenario::Serial, &serial), (Scenario::Drom, &drom)] {
        for job in &workload {
            let samples = ipc_samples(result, job.id, 50.0);
            let histogram = Histogram::from_samples(0.0, 2.0, 40, &samples);
            summary.add_row(&[
                job.name.clone(),
                scenario.label().to_string(),
                format!("{:.3}", histogram.mode_value()),
                format!("{:.3}", histogram.mean()),
                histogram.total().to_string(),
            ]);
            println!(
                "--- {} / {} (IPC distribution) ---",
                job.name,
                scenario.label()
            );
            print!("{}", histogram.to_ascii(50));
            println!();
        }
    }
    emit(&summary);
}
