//! Figure 9: total run time of the CoreNeuron + Pils workload, Serial vs DROM, for
//! every (CoreNeuron configuration, Pils configuration) pair.
//!
//! Run with: `cargo run -p drom-bench --bin fig09_neuron_pils_runtime`

use drom_apps::AppKind;
use drom_bench::{emit, filter_analytics, improvement_table, use_case1_sweep};
use drom_metrics::Scenario;

fn main() {
    let sweep = use_case1_sweep(AppKind::CoreNeuron);
    let rows: Vec<(String, f64, f64)> = filter_analytics(&sweep, AppKind::Pils)
        .iter()
        .map(|r| {
            (
                r.label(),
                r.total_run_time_s(Scenario::Serial),
                r.total_run_time_s(Scenario::Drom),
            )
        })
        .collect();
    emit(&improvement_table(
        "Figure 9: CoreNeuron + Pils workload total run time",
        "[s]",
        &rows,
    ));
}
