//! Figure 13: the high-priority use case traces — cycles per microsecond over
//! time for both jobs, Serial scenario vs DROM scenario, plus the total run
//! time comparison (the paper reports a 2.5% improvement).
//!
//! Run with: `cargo run -p drom-bench --bin fig13_highprio_trace`

use drom_bench::{emit, improvement_table, use_case2};
use drom_metrics::export::series_to_ascii;
use drom_metrics::Scenario;
use drom_sim::job_cycles_series;

fn main() {
    let (workload, serial, drom) = use_case2();

    emit(&improvement_table(
        "Figure 13: use case 2 total run time",
        "[s]",
        &[(
            "NEST Conf. 1 + CoreNeuron Conf. 1".to_string(),
            serial.report.total_run_time() as f64 / 1e6,
            drom.report.total_run_time() as f64 / 1e6,
        )],
    ));

    println!("cycles per microsecond over time (one row per job, 0..2600 scale):\n");
    for (scenario, result) in [(Scenario::Serial, &serial), (Scenario::Drom, &drom)] {
        let bin = result.makespan_s() / 80.0;
        let series: Vec<Vec<f64>> = workload
            .iter()
            .map(|job| job_cycles_series(result, job.id, bin))
            .collect();
        let labels: Vec<String> = workload
            .iter()
            .map(|job| format!("{:>6} | {}", scenario.label(), job.name))
            .collect();
        print!("{}", series_to_ascii(&labels, &series, 80));
        println!();
    }

    // Numeric series (first bins) for inspection / CSV-style consumption.
    if std::env::args().any(|a| a == "--csv") {
        for (scenario, result) in [(Scenario::Serial, &serial), (Scenario::Drom, &drom)] {
            for job in &workload {
                let series = job_cycles_series(result, job.id, result.makespan_s() / 40.0);
                let values: Vec<String> = series.iter().map(|v| format!("{v:.0}")).collect();
                println!("{},{},{}", scenario.label(), job.name, values.join(","));
            }
        }
    }
}
