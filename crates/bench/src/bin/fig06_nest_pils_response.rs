//! Figure 6: individual response times of NEST and Pils in the NEST + Pils
//! workload, Serial vs DROM.
//!
//! Run with: `cargo run -p drom-bench --bin fig06_nest_pils_response`

use drom_apps::AppKind;
use drom_bench::{emit, filter_analytics, improvement_table, use_case1_sweep};
use drom_metrics::Scenario;

fn main() {
    let sweep = use_case1_sweep(AppKind::Nest);
    let mut rows = Vec::new();
    for r in filter_analytics(&sweep, AppKind::Pils) {
        for job in [
            r.simulation_name().to_string(),
            r.analytics_name().to_string(),
        ] {
            rows.push((
                format!("{} / {}", r.label(), job),
                r.response_s(Scenario::Serial, &job),
                r.response_s(Scenario::Drom, &job),
            ));
        }
    }
    emit(&improvement_table(
        "Figure 6: individual response times, NEST + Pils workload",
        "[s]",
        &rows,
    ));
}
