//! Figure 11: total run time (left) and response times (right) of the
//! CoreNeuron + STREAM workload, Serial vs DROM.
//!
//! Run with: `cargo run -p drom-bench --bin fig11_neuron_stream`

use drom_apps::AppKind;
use drom_bench::{emit, filter_analytics, improvement_table, use_case1_sweep};
use drom_metrics::Scenario;

fn main() {
    let sweep = use_case1_sweep(AppKind::CoreNeuron);
    let stream_pairs = filter_analytics(&sweep, AppKind::Stream);

    let runtime_rows: Vec<(String, f64, f64)> = stream_pairs
        .iter()
        .map(|r| {
            (
                r.label(),
                r.total_run_time_s(Scenario::Serial),
                r.total_run_time_s(Scenario::Drom),
            )
        })
        .collect();
    emit(&improvement_table(
        "Figure 11 (left): CoreNeuron + STREAM total run time",
        "[s]",
        &runtime_rows,
    ));

    let mut response_rows = Vec::new();
    for r in &stream_pairs {
        for job in [
            r.simulation_name().to_string(),
            r.analytics_name().to_string(),
        ] {
            response_rows.push((
                format!("{} / {}", r.label(), job),
                r.response_s(Scenario::Serial, &job),
                r.response_s(Scenario::Drom, &job),
            ));
        }
    }
    emit(&improvement_table(
        "Figure 11 (right): CoreNeuron + STREAM response times",
        "[s]",
        &response_rows,
    ));
}
