//! Cluster-scale scheduling sweep: first-fit vs conservative backfill vs the
//! DROM-malleable policy, replaying the same synthetic trace on the same
//! cluster (the dynamic-workload experiment the paper's Section 5 leaves to
//! future schedulers).
//!
//! Run with: `cargo run --release -p drom-bench --bin cluster_sweep`
//! (`--nodes N`, `--jobs M`, `--seed S`, `--load 1.15` override the
//! 128-node × 2000-job × 1.15-offered-load default; `--csv` appends CSV
//! output, like every figure binary).
//!
//! `--tier scale-out` switches to the 1024-node × 10 000-job tier
//! (`drom_sim::scale_out_trace`) that exists to exercise the indexed
//! malleable pass — the pre-index policy cannot finish it in reasonable
//! time. `--jobs` still overrides for smoke runs (CI replays the tier at a
//! reduced job count).
//!
//! `--tier model-aware` replays the standing trace with the calibrated
//! application mix attached (`drom_sim::model_aware_trace`): the *same*
//! arrivals, shapes and durations as the standing tier, but every job
//! carries its application's speedup curve, so shrinking a static-partition
//! job is no longer free and memory-bound jobs gain nothing from expansion.
//! The linear standing rows are the control; the delta between the two
//! tiers is the committed measurement of what the model coupling changes
//! (EXPERIMENTS.md).
//!
//! `--scan` replays the malleable row a second time under the O(nodes·jobs)
//! reference scan (`MalleableScanPolicy`) and hard-fails on any divergence
//! from the indexed pass — the differential harness the CI smoke runs on the
//! model-aware tier, where the curve-driven donor ranking has the most
//! surface to drift.
//!
//! `--loss-tolerance F` adds one more malleable row replayed with the
//! shrink-economics gate relaxed to `gain × F ≥ loss` (`F = 1.0` is the
//! default strict gate), so the utilization/response trade of admitting
//! throughput-losing shrinks is a committed measurement rather than a guess.

use std::str::FromStr;

use drom_bench::emit;
use drom_metrics::{workload::percent_improvement, Table};
use drom_sim::trace::{MEGA_JOBS, MEGA_NODES, SCALE_OUT_JOBS, SCALE_OUT_NODES};
use drom_sim::{
    mega_trace, mixed_hpc_trace, model_aware_trace, queue_churn_trace, reservation_heavy_trace,
    scale_out_trace, ClusterRunReport, ClusterSim,
};
use drom_slurm::policy::{SchedulerPolicy, SpeedupCurve};
use drom_slurm::{BackfillPolicy, FirstFitPolicy, MalleablePolicy, MalleableScanPolicy};

/// Value of `flag` on the command line, or `default`. An unparsable value is
/// a hard error: silently running the experiment at a default the user did
/// not ask for would poison recorded results.
fn arg<T: FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == flag).map(|i| args.get(i + 1)) {
        None => default,
        Some(Some(v)) => v.parse().unwrap_or_else(|_| {
            panic!("invalid value {v:?} for {flag}");
        }),
        Some(None) => panic!("{flag} needs a value"),
    }
}

/// `true` when the bare `name` flag is present on the command line.
fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let tier = arg::<String>("--tier", "standing".to_string());
    let seed = arg::<u64>("--seed", 2018);
    let node_cpus = 16;
    let (nodes, jobs, load, config) = match tier.as_str() {
        "standing" => {
            let nodes = arg::<usize>("--nodes", 128);
            let jobs = arg::<usize>("--jobs", 2000);
            let load = arg::<f64>("--load", 1.15); // ratio of capacity
            (
                nodes,
                jobs,
                load,
                mixed_hpc_trace(seed, jobs, nodes, node_cpus, load),
            )
        }
        // The scale-out tier pins the cluster shape and load so committed
        // results always mean the same experiment; only the job count (CI
        // smoke) and seed vary.
        "scale-out" => {
            assert!(
                std::env::args().all(|a| a != "--nodes" && a != "--load"),
                "--tier scale-out pins the cluster shape; use the standing \
                 tier with --nodes/--load instead"
            );
            let jobs = arg::<usize>("--jobs", SCALE_OUT_JOBS);
            (SCALE_OUT_NODES, jobs, 1.15, scale_out_trace(seed, jobs))
        }
        // The model-aware tier: the standing cluster shape with the
        // calibrated app mix. `--nodes/--jobs/--load` still apply (CI smokes
        // a reduced job count) — the tier differs from "standing" only in
        // the attached speedup curves, which is exactly what makes the two
        // tables comparable row by row.
        "model-aware" => {
            let nodes = arg::<usize>("--nodes", 128);
            let jobs = arg::<usize>("--jobs", 2000);
            let load = arg::<f64>("--load", 1.15);
            (
                nodes,
                jobs,
                load,
                model_aware_trace(seed, jobs, nodes, node_cpus, load),
            )
        }
        // The reservation-dense tier: wide rigid job classes keep the head
        // of the queue blocked, so almost every malleable pass forecasts a
        // drain reservation — the workload the release-timeline index
        // exists for. Standing cluster shape, standing overrides apply.
        "reservation-heavy" => {
            let nodes = arg::<usize>("--nodes", 128);
            let jobs = arg::<usize>("--jobs", 2000);
            let load = arg::<f64>("--load", 1.15);
            (
                nodes,
                jobs,
                load,
                reservation_heavy_trace(seed, jobs, nodes, node_cpus, load),
            )
        }
        // The queue-churn tier: short over-subscribing jobs keep the
        // waiting queue deep, so the run is admission-bound — the surface
        // the incremental admission order and the dirty-tracked probe memo
        // serve. Standing cluster shape, standing overrides apply; `--scan`
        // replays it against the always-re-sort/always-probe reference.
        "queue-churn" => {
            let nodes = arg::<usize>("--nodes", 128);
            let jobs = arg::<usize>("--jobs", 2000);
            let load = arg::<f64>("--load", 1.3);
            (
                nodes,
                jobs,
                load,
                queue_churn_trace(seed, jobs, nodes, node_cpus, load),
            )
        }
        // The mega tier pins the cluster shape like scale-out: 10k nodes ×
        // 100k jobs, feasible end-to-end only with the release-timeline
        // reservations and the histogram admission guards. `--jobs` still
        // overrides for CI smoke runs.
        "mega" => {
            assert!(
                std::env::args().all(|a| a != "--nodes" && a != "--load"),
                "--tier mega pins the cluster shape; use the standing tier \
                 with --nodes/--load instead"
            );
            let jobs = arg::<usize>("--jobs", MEGA_JOBS);
            (MEGA_NODES, jobs, 1.15, mega_trace(seed, jobs))
        }
        other => panic!(
            "unknown tier {other:?} (use \"standing\", \"scale-out\", \
             \"model-aware\", \"reservation-heavy\", \"queue-churn\" or \
             \"mega\")"
        ),
    };

    let trace = config.generate();
    let sim = ClusterSim::new(nodes, node_cpus);
    println!(
        "cluster_sweep: {nodes} nodes x {node_cpus} CPUs, {jobs} jobs, \
         seed {seed}, offered load ~{load:.2}x capacity\n"
    );

    let policies: Vec<Box<dyn SchedulerPolicy>> = vec![
        Box::new(FirstFitPolicy::default()),
        Box::new(BackfillPolicy::default()),
        Box::new(MalleablePolicy::default()),
    ];
    let reports: Vec<ClusterRunReport> = policies
        .into_iter()
        .map(|p| sim.run(p, &trace).expect("trace jobs all fit the cluster"))
        .collect();

    // Optional extra malleable row with the shrink-economics gate relaxed to
    // `gain × tolerance ≥ loss`; labelled with the tolerance so committed
    // tables stay self-describing.
    let tolerance_run: Option<(String, ClusterRunReport)> =
        std::env::args().any(|a| a == "--loss-tolerance").then(|| {
            let t = arg::<f64>("--loss-tolerance", 1.0);
            assert!(
                t.is_finite() && t > 0.0,
                "--loss-tolerance must be positive"
            );
            let tol_fp = (t * SpeedupCurve::FP as f64).round() as u64;
            let r = sim
                .run(
                    Box::new(MalleablePolicy::with_loss_tolerance(tol_fp)),
                    &trace,
                )
                .expect("trace jobs all fit the cluster");
            (format!("malleable(tol={t:.2})"), r)
        });

    if flag("--scan") {
        let scan = sim
            .run(Box::new(MalleableScanPolicy::default()), &trace)
            .expect("trace jobs all fit the cluster");
        let indexed = &reports[2];
        assert!(
            scan.report == indexed.report
                && scan.utilization == indexed.utilization
                && scan.stats == indexed.stats
                && scan.events_processed == indexed.events_processed,
            "indexed malleable pass diverged from the reference scan \
             (stats {:?} vs {:?})",
            indexed.stats,
            scan.stats,
        );
        println!("scan check: reference-scan replay identical to the indexed malleable pass\n");
    }

    let mut table = Table::new(
        "Scheduling policies on one trace",
        &[
            "policy",
            "makespan [s]",
            "mean resp [s]",
            "P95 resp [s]",
            "mean wait [s]",
            "util [%]",
            "shrinks",
            "expands",
        ],
    );
    let labelled = reports
        .iter()
        .map(|r| (r.policy.to_string(), r))
        .chain(tolerance_run.iter().map(|(label, r)| (label.clone(), r)));
    for (label, r) in labelled.clone() {
        table.add_row(&[
            label,
            format!("{:.0}", r.makespan_s()),
            format!("{:.0}", r.mean_response_s()),
            format!("{:.0}", r.p95_response_s()),
            format!("{:.0}", r.mean_wait_s()),
            format!("{:.1}", r.utilization_fraction() * 100.0),
            r.stats.shrinks.to_string(),
            r.stats.expands.to_string(),
        ]);
    }
    emit(&table);

    let baseline = &reports[0];
    let mut vs = Table::new(
        "Improvement over first-fit [%] (positive = better)",
        &["policy", "makespan", "mean resp", "P95 resp", "utilization"],
    );
    for (label, r) in labelled.skip(1) {
        vs.add_row(&[
            label,
            format!(
                "{:+.1}",
                percent_improvement(baseline.makespan_s(), r.makespan_s())
            ),
            format!(
                "{:+.1}",
                percent_improvement(baseline.mean_response_s(), r.mean_response_s())
            ),
            format!(
                "{:+.1}",
                percent_improvement(baseline.p95_response_s(), r.p95_response_s())
            ),
            format!(
                "{:+.1}",
                // Higher is better for utilization: flip the sign convention.
                -percent_improvement(baseline.utilization_fraction(), r.utilization_fraction())
            ),
        ]);
    }
    emit(&vs);
}
