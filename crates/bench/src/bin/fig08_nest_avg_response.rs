//! Figure 8: average response time of every NEST workload (NEST x {Pils
//! Conf. 1-3, STREAM}), Serial vs DROM.
//!
//! Run with: `cargo run -p drom-bench --bin fig08_nest_avg_response`

use drom_apps::AppKind;
use drom_bench::{emit, improvement_table, use_case1_sweep};
use drom_metrics::Scenario;

fn main() {
    let sweep = use_case1_sweep(AppKind::Nest);
    let rows: Vec<(String, f64, f64)> = sweep
        .iter()
        .map(|r| {
            (
                r.label(),
                r.average_response_s(Scenario::Serial),
                r.average_response_s(Scenario::Drom),
            )
        })
        .collect();
    emit(&improvement_table(
        "Figure 8: average response time of NEST workloads",
        "[s]",
        &rows,
    ));
}
