//! Figure 12: average response time of every CoreNeuron workload (CoreNeuron x {Pils
//! Conf. 1-3, STREAM}), Serial vs DROM.
//!
//! Run with: `cargo run -p drom-bench --bin fig12_neuron_avg_response`

use drom_apps::AppKind;
use drom_bench::{emit, improvement_table, use_case1_sweep};
use drom_metrics::Scenario;

fn main() {
    let sweep = use_case1_sweep(AppKind::CoreNeuron);
    let rows: Vec<(String, f64, f64)> = sweep
        .iter()
        .map(|r| {
            (
                r.label(),
                r.average_response_s(Scenario::Serial),
                r.average_response_s(Scenario::Drom),
            )
        })
        .collect();
    emit(&improvement_table(
        "Figure 12: average response time of CoreNeuron workloads",
        "[s]",
        &rows,
    ));
}
