//! CPU-set algebra and the task/affinity distribution algorithms, including
//! the socket-aware vs round-robin vs packed ablation (Section 5).

use criterion::{criterion_group, criterion_main, Criterion};
use drom_cpuset::distribution::{co_allocate, equipartition, RunningTask};
use drom_cpuset::{parse_cpu_list, CpuSet, DistributionPolicy, Topology};

fn bench_cpuset(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpuset_ops");

    group.bench_function("set_iterate_64", |b| {
        let set = CpuSet::first_n(64);
        b.iter(|| set.iter().sum::<usize>());
    });

    group.bench_function("union_intersection", |b| {
        let a = CpuSet::from_range(0..48).unwrap();
        let bset = CpuSet::from_range(16..64).unwrap();
        b.iter(|| {
            let u = a.union(&bset);
            let i = a.intersection(&bset);
            (u.count(), i.count())
        });
    });

    group.bench_function("parse_format_roundtrip", |b| {
        let set = CpuSet::from_cpus([0, 1, 2, 3, 8, 10, 11, 30, 31, 32, 63]).unwrap();
        b.iter(|| parse_cpu_list(&set.to_string()).unwrap());
    });

    let topo = Topology::marenostrum3_node();
    for policy in [
        DistributionPolicy::Packed,
        DistributionPolicy::RoundRobinSockets,
        DistributionPolicy::SocketAware,
    ] {
        group.bench_function(format!("equipartition_4_tasks_{policy:?}"), |b| {
            b.iter(|| equipartition(&topo.node_mask(), 4, &topo, policy));
        });
    }

    group.bench_function("co_allocate_2_running_2_new", |b| {
        let running = vec![
            RunningTask {
                job_id: 1,
                task_id: 0,
                mask: CpuSet::from_range(0..8).unwrap(),
            },
            RunningTask {
                job_id: 1,
                task_id: 1,
                mask: CpuSet::from_range(8..16).unwrap(),
            },
        ];
        b.iter(|| {
            co_allocate(
                &topo.node_mask(),
                &running,
                2,
                &topo,
                DistributionPolicy::SocketAware,
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cpuset);
criterion_main!(benches);
