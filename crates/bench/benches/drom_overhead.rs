//! The paper's "no visible overhead" check (Section 6): the NEST-like mini-app
//! running with DLB/DROM attached but never reconfigured, versus running
//! without DLB at all, on exclusive resources.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_apps::{AppConfig, AppKind, NestSim};
use drom_core::DromProcess;
use drom_cpuset::CpuSet;
use drom_ompsim::{DromOmptTool, OmpRuntime};
use drom_shmem::NodeShmem;

fn small_nest() -> NestSim {
    NestSim::new(AppConfig::new(AppKind::Nest, 1, 1, 4)).scaled(4, 2_000)
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("drom_overhead");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(4));

    group.bench_function("nest_rank_without_dlb", |b| {
        let rt = OmpRuntime::new(4);
        let nest = small_nest();
        b.iter(|| nest.run_rank(&rt, None, None, 0));
    });

    group.bench_function("nest_rank_with_idle_drom", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 4));
        let process =
            Arc::new(DromProcess::init(1, CpuSet::first_n(4), Arc::clone(&shmem)).unwrap());
        let rt = OmpRuntime::new(4);
        let tool = DromOmptTool::attach(&rt, process);
        let nest = small_nest();
        b.iter(|| nest.run_rank(&rt, Some(&tool), None, 0));
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
