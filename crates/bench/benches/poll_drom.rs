//! Cost of the polling malleability point: a `DLB_PollDROM` that finds nothing
//! versus one that applies a new mask (the paper's polling-based receiver,
//! Section 3.1).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_core::{DromAdmin, DromFlags, DromProcess};
use drom_cpuset::CpuSet;
use drom_shmem::NodeShmem;

fn bench_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("poll_drom");
    group.sample_size(50);

    group.bench_function("poll_no_update", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc = DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        b.iter(|| proc.poll_drom().unwrap());
    });

    group.bench_function("poll_with_update", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc = DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        let small = CpuSet::from_range(0..8).unwrap();
        let full = CpuSet::first_n(16);
        let mut flip = false;
        b.iter(|| {
            let mask = if flip { &full } else { &small };
            flip = !flip;
            admin
                .set_process_mask(1, mask, DromFlags::default())
                .unwrap();
            proc.poll_drom().unwrap().unwrap()
        });
    });

    group.bench_function("has_pending_check", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc = DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        b.iter(|| proc.has_pending_update().unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_poll);
criterion_main!(benches);
