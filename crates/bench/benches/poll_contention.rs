//! Contention at the malleability point: `DLB_PollDROM` fast-path latency
//! while an administrator hammers the node registry.
//!
//! The paper's efficiency claim (Section 3.3, Table 1) is that polling is
//! cheap enough to call at *every* malleability point. That only holds if a
//! poll that finds no pending update does not serialize against concurrent
//! administrator traffic on the node. This benchmark measures exactly that:
//! one process polling an empty pending slot while (a) nothing else runs,
//! (b) one administrator continuously re-masks a *different* process, and
//! (c) additional poller threads hammer their own slots as well.
//!
//! Run with `cargo bench -p drom-bench --bench poll_contention`; under
//! `cargo test` every body executes once as a smoke test (this is what CI
//! runs on every PR so the lock-free fast path is exercised in release mode).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_core::{DromAdmin, DromFlags, DromProcess};
use drom_cpuset::CpuSet;
use drom_shmem::NodeShmem;

/// Spawns a thread that toggles `victim`'s mask through the administrator API
/// and immediately consumes each update, keeping the registry's admin path
/// (mask validation, conflict checks, pending hand-off) continuously busy.
fn spawn_admin_load(
    shmem: Arc<NodeShmem>,
    victim: DromProcess,
    stop: Arc<AtomicBool>,
) -> JoinHandle<u64> {
    std::thread::spawn(move || {
        let admin = DromAdmin::attach(shmem);
        let wide = victim.current_mask();
        let narrow = wide.truncated(wide.count() / 2);
        let mut flip = false;
        let mut updates = 0u64;
        // SAFETY(ordering): stop flag; a few extra iterations after the
        // store are harmless, the join is the real synchronization.
        while !stop.load(Ordering::Relaxed) {
            let mask = if flip { &wide } else { &narrow };
            flip = !flip;
            if admin
                .set_process_mask(victim.pid(), mask, DromFlags::default())
                .is_ok()
            {
                let _ = victim.poll_drom();
                updates += 1;
            }
        }
        updates
    })
}

/// Spawns a background thread polling its own (update-free) process in a tight
/// loop, adding fast-path pressure on the registry.
fn spawn_background_poller(proc: DromProcess, stop: Arc<AtomicBool>) -> JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut polls = 0u64;
        // SAFETY(ordering): stop flag, as above; the join synchronizes.
        while !stop.load(Ordering::Relaxed) {
            let _ = proc.poll_drom();
            polls += 1;
        }
        polls
    })
}

fn bench_poll_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("poll_contention");
    group.sample_size(30);

    // Baseline: the uncontended fast path (no admin attached at all).
    group.bench_function("poll_uncontended", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc =
            DromProcess::init(1, CpuSet::from_range(0..4).unwrap(), Arc::clone(&shmem)).unwrap();
        b.iter(|| proc.poll_drom().unwrap());
    });

    group.bench_function("has_pending_uncontended", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc =
            DromProcess::init(1, CpuSet::from_range(0..4).unwrap(), Arc::clone(&shmem)).unwrap();
        b.iter(|| proc.has_pending_update().unwrap());
    });

    // One administrator continuously re-masking another process of the same
    // node while the measured process polls its own (empty) slot.
    group.bench_function("poll_vs_1_admin", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc =
            DromProcess::init(1, CpuSet::from_range(0..4).unwrap(), Arc::clone(&shmem)).unwrap();
        let victim =
            DromProcess::init(2, CpuSet::from_range(4..12).unwrap(), Arc::clone(&shmem)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let admin = spawn_admin_load(Arc::clone(&shmem), victim, Arc::clone(&stop));
        b.iter(|| proc.poll_drom().unwrap());
        // SAFETY(ordering): stop flag; the join below synchronizes.
        stop.store(true, Ordering::Relaxed);
        admin.join().unwrap();
    });

    group.bench_function("has_pending_vs_1_admin", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc =
            DromProcess::init(1, CpuSet::from_range(0..4).unwrap(), Arc::clone(&shmem)).unwrap();
        let victim =
            DromProcess::init(2, CpuSet::from_range(4..12).unwrap(), Arc::clone(&shmem)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let admin = spawn_admin_load(Arc::clone(&shmem), victim, Arc::clone(&stop));
        b.iter(|| proc.has_pending_update().unwrap());
        // SAFETY(ordering): stop flag; the join below synchronizes.
        stop.store(true, Ordering::Relaxed);
        admin.join().unwrap();
    });

    // Four pollers and one administrator sharing the node: three background
    // pollers hammer their own slots while the measured thread polls a fourth.
    group.bench_function("poll_vs_1_admin_4_pollers", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc =
            DromProcess::init(1, CpuSet::from_range(0..2).unwrap(), Arc::clone(&shmem)).unwrap();
        let victim =
            DromProcess::init(2, CpuSet::from_range(8..16).unwrap(), Arc::clone(&shmem)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = vec![spawn_admin_load(
            Arc::clone(&shmem),
            victim,
            Arc::clone(&stop),
        )];
        for i in 0..3u32 {
            let lo = 2 + 2 * i as usize;
            let peer = DromProcess::init(
                10 + i,
                CpuSet::from_range(lo..lo + 2).unwrap(),
                Arc::clone(&shmem),
            )
            .unwrap();
            threads.push(spawn_background_poller(peer, Arc::clone(&stop)));
        }
        b.iter(|| proc.poll_drom().unwrap());
        // SAFETY(ordering): stop flag; the joins below synchronize.
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            t.join().unwrap();
        }
    });

    group.finish();
}

criterion_group!(benches, bench_poll_contention);
criterion_main!(benches);
