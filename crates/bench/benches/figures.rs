//! End-to-end cost of regenerating the paper's figures from the discrete-event
//! simulator (one full use-case-1 pair and the use-case-2 workload).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_apps::Table1;
use drom_bench::{use_case2, UseCase1Result};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("use_case1_nest_pils_pair", |b| {
        b.iter(|| UseCase1Result::run(Table1::NEST_CONF1, Table1::PILS_CONF2));
    });

    group.bench_function("use_case2_workload", |b| {
        b.iter(use_case2);
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
