//! Scheduler throughput at cluster scale: the cost of one scheduling pass of
//! each policy over a loaded 128-node view (and the indexed malleable pass
//! at 1024 nodes), plus the end-to-end event rate of the trace-driven
//! cluster simulator.
//!
//! The scheduling pass runs at every submission and completion, so a
//! thousand-job trace pays it thousands of times; its cost is what bounds
//! how big a cluster the malleable controller can serve. `malleable_*`
//! measures the indexed pass the way production runs it (fed the driver's
//! event-maintained `SchedIndex`); `malleable_scan_*` measures the pre-index
//! reference implementation, so the speedup of the donor/availability
//! indices stays visible. Baselines are recorded in `BENCH_sched.json`.
//!
//! The per-pass benches use the `always_probe` policy variants: they call
//! `schedule` thousands of times on one frozen view, and the production
//! probe memo would turn every iteration after the first into a skip-path
//! no-op. The dirty-tracked path is measured end-to-end instead (the
//! events/sec guard in `sched_guard`), where state actually evolves.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use drom_bench::sched_fixtures::{
    loaded_state, loaded_state_model, reservation_stress_state, NODE_CPUS,
};
use drom_sim::{mixed_hpc_trace, ClusterSim};
use drom_slurm::policy::{ClusterView, SchedIndex, SchedulerPolicy};
use drom_slurm::{BackfillPolicy, FirstFitPolicy, MalleablePolicy, MalleableScanPolicy};

fn bench_sched_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_scale");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    let (free, running, queue) = loaded_state(128);
    let index = SchedIndex::rebuild(&free, &running);
    let view = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free,
        running: &running,
        index: Some(&index),
        order: None,
    };
    let view_no_index = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free,
        running: &running,
        index: None,
        order: None,
    };

    group.bench_function("first_fit_pass_128n", |b| {
        let mut policy = FirstFitPolicy::always_probe();
        b.iter(|| black_box(policy.schedule(&view, &queue, 1_000)));
    });

    group.bench_function("backfill_pass_128n", |b| {
        let mut policy = BackfillPolicy::always_probe();
        b.iter(|| black_box(policy.schedule(&view, &queue, 1_000)));
    });

    group.bench_function("malleable_pass_128n", |b| {
        let mut policy = MalleablePolicy::always_probe();
        b.iter(|| black_box(policy.schedule(&view, &queue, 1_000)));
    });

    // The pre-index reference on the same view (it ignores the index): this
    // is the committed 2 ms baseline the indexed pass is measured against.
    group.bench_function("malleable_scan_pass_128n", |b| {
        let mut policy = MalleableScanPolicy::default();
        b.iter(|| black_box(policy.schedule(&view_no_index, &queue, 1_000)));
    });

    // The same loaded view with the calibrated app models attached: the
    // pass pays curve-scaled estimates instead of linear div_ceil. Baselined
    // next to the linear pass so the model coupling's cost stays visible
    // (sched_guard enforces it in CI).
    let (free_m, running_m, queue_m) = loaded_state_model(128);
    let index_m = SchedIndex::rebuild(&free_m, &running_m);
    let view_m = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free_m,
        running: &running_m,
        index: Some(&index_m),
        order: None,
    };
    group.bench_function("malleable_model_pass_128n", |b| {
        let mut policy = MalleablePolicy::always_probe();
        b.iter(|| black_box(policy.schedule(&view_m, &queue_m, 1_000)));
    });

    // The scale-out tier's view: 1024 nodes, ~1530 running, 512 queued.
    let (free_xl, running_xl, queue_xl) = loaded_state(1024);
    let index_xl = SchedIndex::rebuild(&free_xl, &running_xl);
    let view_xl = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free_xl,
        running: &running_xl,
        index: Some(&index_xl),
        order: None,
    };
    let view_xl_no_index = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free_xl,
        running: &running_xl,
        index: None,
        order: None,
    };

    group.bench_function("malleable_pass_1024n", |b| {
        let mut policy = MalleablePolicy::always_probe();
        b.iter(|| black_box(policy.schedule(&view_xl, &queue_xl, 1_000)));
    });

    group.bench_function("malleable_scan_pass_1024n", |b| {
        let mut policy = MalleableScanPolicy::default();
        b.iter(|| black_box(policy.schedule(&view_xl_no_index, &queue_xl, 1_000)));
    });

    // The reservation-stress view: 1024 rigid holders with distinct
    // completion estimates and one cluster-wide queued job, so the pass cost
    // *is* the drain-reservation forecast (the fit only succeeds at the very
    // last release). The indexed pass walks the release timeline; the scan
    // keeps the per-candidate replay, so the pair records the timeline's
    // speedup the way malleable_* vs malleable_scan_* records the index's.
    let (free_r, running_r, queue_r) = reservation_stress_state(1024);
    let index_r = SchedIndex::rebuild(&free_r, &running_r);
    let view_r = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free_r,
        running: &running_r,
        index: Some(&index_r),
        order: None,
    };
    let view_r_no_index = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free_r,
        running: &running_r,
        index: None,
        order: None,
    };

    group.bench_function("malleable_reservation_pass_1024n", |b| {
        let mut policy = MalleablePolicy::always_probe();
        b.iter(|| black_box(policy.schedule(&view_r, &queue_r, 1_000)));
    });

    group.bench_function("malleable_scan_reservation_pass_1024n", |b| {
        let mut policy = MalleableScanPolicy::default();
        b.iter(|| black_box(policy.schedule(&view_r_no_index, &queue_r, 1_000)));
    });

    // End-to-end: a full 300-job trace on 32 nodes, malleable policy. The
    // metric that matters is events/second; the report prints time per run
    // (deterministically 806 events for this trace — assert it if you change
    // the parameters), so divide accordingly.
    group.bench_function("cluster_sim_300_jobs_32n", |b| {
        let trace = mixed_hpc_trace(7, 300, 32, NODE_CPUS, 1.15).generate();
        let sim = ClusterSim::new(32, NODE_CPUS);
        b.iter(|| {
            let report = sim
                .run(Box::new(MalleablePolicy::default()), &trace)
                .unwrap();
            black_box(report.events_processed)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sched_scale);
criterion_main!(benches);
