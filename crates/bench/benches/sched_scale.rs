//! Scheduler throughput at cluster scale: the cost of one scheduling pass of
//! each policy over a loaded 128-node view, and the end-to-end event rate of
//! the trace-driven cluster simulator.
//!
//! The scheduling pass runs at every submission and completion, so a
//! thousand-job trace pays it thousands of times; its cost is what bounds
//! how big a cluster the malleable controller can serve. Baselines are
//! recorded in `BENCH_sched.json`.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use drom_sim::{mixed_hpc_trace, ClusterSim};
use drom_slurm::policy::{
    ClusterView, JobAllocation, QueuedJob, RunningJob, SchedulerPolicy,
};
use drom_slurm::{BackfillPolicy, FirstFitPolicy, MalleablePolicy};

const NODES: usize = 128;
const NODE_CPUS: usize = 16;

/// A loaded cluster snapshot: 181 running jobs (1–4 nodes each, some shrunk;
/// the shape mix saturates the cluster just before the 192-job cap) plus a
/// 64-job queue — the steady state of the `cluster_sweep` trace.
fn loaded_state() -> (Vec<usize>, Vec<RunningJob>, Vec<QueuedJob>) {
    let mut free = vec![NODE_CPUS; NODES];
    let mut running = Vec::new();
    let mut id = 1u64;
    // Deterministic placement: walk the nodes, dropping jobs of rotating
    // shapes until the cluster is ~89% allocated.
    let shapes = [(1usize, 4usize), (2, 8), (4, 16), (1, 8), (2, 4)];
    let mut node = 0usize;
    for i in 0.. {
        let (nodes, width) = shapes[i % shapes.len()];
        let indices: Vec<usize> = (0..nodes).map(|k| (node + k) % NODES).collect();
        if indices.iter().any(|&n| free[n] < width) {
            node += 1;
            if running.len() >= 192 || i > 4 * NODES {
                break;
            }
            continue;
        }
        for &n in &indices {
            free[n] -= width;
        }
        let shrunk = i % 3 == 0 && width > 2;
        running.push(RunningJob {
            job: QueuedJob::new(id, nodes, width)
                .malleable((width / 4).max(1))
                .with_expected_duration_us(1_000_000 + 10_000 * id),
            alloc: JobAllocation {
                job_id: id,
                node_indices: indices,
                cpus_per_node: if shrunk { (width / 2).max(1) } else { width },
            },
            start_us: 0,
            expected_end_us: Some(1_000_000 + 10_000 * id),
        });
        if shrunk {
            // The shrink freed half the width on each node.
            let half = width - (width / 2).max(1);
            for &n in &running.last().unwrap().alloc.node_indices {
                free[n] += half;
            }
        }
        id += 1;
        node += nodes;
        if running.len() >= 192 {
            break;
        }
    }
    let queue: Vec<QueuedJob> = (0..64)
        .map(|i| {
            let (nodes, width) = shapes[i % shapes.len()];
            QueuedJob::new(10_000 + i as u64, nodes, width)
                .malleable((width / 4).max(1))
                .with_submit_us(i as u64)
                .with_expected_duration_us(500_000 + 1_000 * i as u64)
        })
        .collect();
    (free, running, queue)
}

fn bench_sched_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_scale");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    let (free, running, queue) = loaded_state();
    let view = ClusterView {
        node_cpus: NODE_CPUS,
        free: &free,
        running: &running,
    };

    group.bench_function("first_fit_pass_128n", |b| {
        let mut policy = FirstFitPolicy;
        b.iter(|| black_box(policy.schedule(&view, &queue, 1_000)));
    });

    group.bench_function("backfill_pass_128n", |b| {
        let mut policy = BackfillPolicy;
        b.iter(|| black_box(policy.schedule(&view, &queue, 1_000)));
    });

    group.bench_function("malleable_pass_128n", |b| {
        let mut policy = MalleablePolicy;
        b.iter(|| black_box(policy.schedule(&view, &queue, 1_000)));
    });

    // End-to-end: a full 300-job trace on 32 nodes, malleable policy. The
    // metric that matters is events/second; the report prints time per run
    // (deterministically 806 events for this trace — assert it if you change
    // the parameters), so divide accordingly.
    group.bench_function("cluster_sim_300_jobs_32n", |b| {
        let trace = mixed_hpc_trace(7, 300, 32, NODE_CPUS, 1.15).generate();
        let sim = ClusterSim::new(32, NODE_CPUS);
        b.iter(|| {
            let report = sim.run(Box::new(MalleablePolicy), &trace).unwrap();
            black_box(report.events_processed)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sched_scale);
criterion_main!(benches);
