//! Micro-benchmarks of the DROM administrator API: attach, pid list, get/set
//! mask, pre-init/post-finalize. Backs the paper's "efficient … without any
//! overhead" claim for the API itself (Section 3).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_core::{DromAdmin, DromFlags, DromProcess};
use drom_cpuset::CpuSet;
use drom_shmem::NodeShmem;

fn bench_drom_api(c: &mut Criterion) {
    let mut group = c.benchmark_group("drom_api");
    group.sample_size(30);

    group.bench_function("attach_detach", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        b.iter(|| {
            let admin = DromAdmin::attach(Arc::clone(&shmem));
            admin.detach().unwrap();
        });
    });

    group.bench_function("get_pid_list_8_procs", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let _procs: Vec<_> = (0..8)
            .map(|i| {
                DromProcess::init(
                    i as u32 + 1,
                    CpuSet::from_cpus([i * 2, i * 2 + 1]).unwrap(),
                    Arc::clone(&shmem),
                )
                .unwrap()
            })
            .collect();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        b.iter(|| admin.get_pid_list().unwrap());
    });

    group.bench_function("get_process_mask", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let _proc = DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        b.iter(|| admin.get_process_mask(1, DromFlags::default()).unwrap());
    });

    group.bench_function("set_mask_then_poll", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let proc = DromProcess::init(1, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        let small = CpuSet::from_range(0..8).unwrap();
        let full = CpuSet::first_n(16);
        let mut flip = false;
        b.iter(|| {
            let mask = if flip { &full } else { &small };
            flip = !flip;
            admin
                .set_process_mask(1, mask, DromFlags::default())
                .unwrap();
            proc.poll_drom().unwrap();
        });
    });

    group.bench_function("preinit_register_postfinalize", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        let mut pid = 100u32;
        b.iter(|| {
            pid += 1;
            let (environ, _) = admin
                .pre_init(
                    pid,
                    &CpuSet::from_range(0..4).unwrap(),
                    DromFlags::default(),
                )
                .unwrap();
            let child = DromProcess::init_from_environ(&environ, Arc::clone(&shmem)).unwrap();
            child.finalize().unwrap();
            let _ = admin.post_finalize(pid, DromFlags::default());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_drom_api);
criterion_main!(benches);
