//! LeWI lend/borrow/reclaim cycle cost (the other DLB module, Section 3.1).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_core::{DromProcess, Lewi};
use drom_cpuset::CpuSet;
use drom_shmem::NodeShmem;

fn bench_lewi(c: &mut Criterion) {
    let mut group = c.benchmark_group("lewi");
    group.sample_size(30);

    group.bench_function("lend_reclaim_cycle", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let a = Arc::new(
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        let lewi = Lewi::new(Arc::clone(&a));
        b.iter(|| {
            lewi.enter_blocking(1).unwrap();
            lewi.exit_blocking().unwrap();
        });
    });

    group.bench_function("lend_borrow_reclaim_two_processes", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 16));
        let a = Arc::new(
            DromProcess::init(1, CpuSet::from_range(0..8).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        let bb = Arc::new(
            DromProcess::init(2, CpuSet::from_range(8..16).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        let lewi_a = Lewi::new(Arc::clone(&a));
        let lewi_b = Lewi::new(Arc::clone(&bb));
        b.iter(|| {
            lewi_a.enter_blocking(1).unwrap();
            lewi_b.borrow(4).unwrap();
            lewi_a.exit_blocking().unwrap();
            bb.poll_drom().unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_lewi);
criterion_main!(benches);
