//! SLURM-side costs: the task/affinity launch_request mask computation, the
//! full pre-init launch path and the controller admission check (Section 5).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_slurm::{Cluster, JobSpec, SchedulingMode, SlurmCtld, Srun};

fn bench_slurm(c: &mut Criterion) {
    let mut group = c.benchmark_group("slurm_sched");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("launch_request_idle_node", |b| {
        let cluster = Arc::new(Cluster::marenostrum3(1));
        let srun = Srun::new(Arc::clone(&cluster), true);
        let slurmd = srun.slurmd("node0").unwrap();
        b.iter(|| slurmd.launch_request(1, 2).unwrap());
    });

    group.bench_function("launch_and_complete_coallocated_job", |b| {
        let cluster = Arc::new(Cluster::marenostrum3(2));
        let srun = Srun::new(Arc::clone(&cluster), true);
        let nodes = cluster.node_names();
        let sim = JobSpec::new(1, "sim").with_tasks(2).with_nodes(2);
        let launched_sim = srun.launch(&sim, &nodes).unwrap();
        let mut next_id = 100u64;
        b.iter(|| {
            next_id += 1;
            let ana = JobSpec::new(next_id, "ana").with_tasks(2).with_nodes(2);
            let launched = srun.launch(&ana, &nodes).unwrap();
            srun.complete(&launched).unwrap();
        });
        srun.complete(&launched_sim).unwrap();
    });

    group.bench_function("controller_admission_check", |b| {
        let mut ctld = SlurmCtld::new(
            (0..64).map(|i| format!("node{i}")).collect(),
            SchedulingMode::drom_default(),
        );
        for j in 0..32 {
            ctld.job_started(j, vec![format!("node{}", j % 64)]);
        }
        let job = JobSpec::new(999, "next").with_nodes(4);
        b.iter(|| ctld.can_start(&job));
    });

    group.finish();
}

criterion_group!(benches, bench_slurm);
criterion_main!(benches);
