//! OpenMP-like runtime: fork/join cost, team resize + rebind cost, and the
//! overhead added by the DROM OMPT tool when nothing changes (Section 4.1).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_core::DromProcess;
use drom_cpuset::CpuSet;
use drom_ompsim::{DromOmptTool, OmpRuntime, Schedule};
use drom_shmem::NodeShmem;

fn bench_ompsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ompsim_parallel");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("fork_join_4_threads", |b| {
        let rt = OmpRuntime::new(4);
        b.iter(|| rt.parallel(|_ctx| {}));
    });

    group.bench_function("fork_join_with_resize", |b| {
        let rt = OmpRuntime::new(8);
        let mut size = 2;
        b.iter(|| {
            size = if size == 2 { 8 } else { 2 };
            rt.set_num_threads(size);
            rt.parallel(|_ctx| {});
        });
    });

    group.bench_function("fork_join_with_idle_drom_tool", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 4));
        let process =
            Arc::new(DromProcess::init(1, CpuSet::first_n(4), Arc::clone(&shmem)).unwrap());
        let rt = OmpRuntime::new(4);
        let _tool = DromOmptTool::attach(&rt, process);
        b.iter(|| rt.parallel(|_ctx| {}));
    });

    group.bench_function("parallel_for_static_4096", |b| {
        let rt = OmpRuntime::new(4);
        b.iter(|| {
            rt.parallel_for(0..4096, Schedule::Static, |i| {
                std::hint::black_box(i);
            })
        });
    });

    group.bench_function("parallel_for_dynamic_4096", |b| {
        let rt = OmpRuntime::new(4);
        b.iter(|| {
            rt.parallel_for(0..4096, Schedule::Dynamic { chunk: 64 }, |i| {
                std::hint::black_box(i);
            })
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ompsim);
criterion_main!(benches);
