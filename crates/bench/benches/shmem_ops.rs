//! Shared-memory registry operations, including contended access from several
//! threads (the lock-protected per-node segment of Section 3.1).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_cpuset::CpuSet;
use drom_shmem::NodeShmem;

fn bench_shmem(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem_ops");
    group.sample_size(30);

    group.bench_function("register_unregister", |b| {
        let shmem = NodeShmem::new("n", 64);
        b.iter(|| {
            shmem.register(1, CpuSet::first_n(16)).unwrap();
            shmem.unregister(1).unwrap();
        });
    });

    group.bench_function("effective_mask_lookup", |b| {
        let shmem = NodeShmem::new("n", 64);
        for i in 0..8u32 {
            shmem
                .register(i + 1, CpuSet::from_cpus([(i as usize) * 2]).unwrap())
                .unwrap();
        }
        b.iter(|| shmem.effective_mask(4).unwrap());
    });

    group.bench_function("free_cpus_8_procs", |b| {
        let shmem = NodeShmem::new("n", 64);
        for i in 0..8u32 {
            shmem
                .register(i + 1, CpuSet::from_cpus([(i as usize) * 2]).unwrap())
                .unwrap();
        }
        b.iter(|| shmem.free_cpus());
    });

    group.bench_function("contended_polls_4_threads", |b| {
        let shmem = Arc::new(NodeShmem::new("n", 64));
        for i in 0..4u32 {
            shmem
                .register(i + 1, CpuSet::from_cpus([i as usize * 4]).unwrap())
                .unwrap();
        }
        b.iter(|| {
            std::thread::scope(|s| {
                for i in 0..4u32 {
                    let shmem = Arc::clone(&shmem);
                    s.spawn(move || {
                        for _ in 0..100 {
                            shmem.poll(i + 1).unwrap();
                        }
                    });
                }
            });
        });
    });

    group.finish();
}

criterion_group!(benches, bench_shmem);
criterion_main!(benches);
