//! MPI-like collectives with and without the DROM PMPI hook installed — the
//! interception cost the paper calls negligible (Section 4.3).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use drom_core::DromProcess;
use drom_cpuset::CpuSet;
use drom_mpisim::{DromPmpiHook, MpiWorld};
use drom_shmem::NodeShmem;

fn bench_mpisim(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_collectives");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("barrier_x100_4_ranks_no_hook", |b| {
        b.iter(|| {
            MpiWorld::new(4).run(|comm| {
                for _ in 0..100 {
                    comm.barrier();
                }
            })
        });
    });

    group.bench_function("barrier_x100_4_ranks_with_drom_hook", |b| {
        b.iter(|| {
            let shmem = Arc::new(NodeShmem::new("node0", 16));
            let shmem_ref = &shmem;
            MpiWorld::new(4).run(move |comm| {
                let pid = 10 + comm.rank() as u32;
                let mask = CpuSet::from_cpus([comm.rank()]).unwrap();
                let process =
                    Arc::new(DromProcess::init(pid, mask, Arc::clone(shmem_ref)).unwrap());
                comm.add_hook(DromPmpiHook::for_process(process));
                for _ in 0..100 {
                    comm.barrier();
                }
            })
        });
    });

    group.bench_function("allreduce_x100_4_ranks", |b| {
        b.iter(|| {
            MpiWorld::new(4).run(|comm| {
                let mut acc = 0.0;
                for i in 0..100 {
                    acc += comm.allreduce_sum(i as f64);
                }
                acc
            })
        });
    });

    group.finish();
}

criterion_group!(benches, bench_mpisim);
criterion_main!(benches);
