//! The Pils-like mini-app: a compute-bound synthetic analytics workload.
//!
//! Pils "is a synthetic benchmark, doing computation-intensive operations …
//! In our experiments, we use it to simulate a compute bound parallel data
//! analytics." It is task-parallel (MPI + OmpSs), so it has no static
//! partition problem: whatever team it is given, work is dealt out dynamically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use drom_ompsim::{DromOmptTool, OmpRuntime, Schedule};

use crate::config::{AppConfig, Table1};
use crate::kernel::busy_work;

/// Result of one Pils rank run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PilsReport {
    /// Wall-clock duration.
    pub duration_us: u64,
    /// Work packages executed (checksum of coverage).
    pub packages_done: u64,
    /// Team size observed at each outer step.
    pub team_sizes: Vec<usize>,
}

/// One rank of the Pils-like benchmark.
#[derive(Debug, Clone)]
pub struct Pils {
    /// The Table-1 configuration this rank belongs to.
    pub config: AppConfig,
    /// Number of outer steps (each is a malleability point).
    pub steps: usize,
    /// Independent work packages per step.
    pub packages_per_step: usize,
    /// Compute units per package.
    pub work_per_package: u64,
}

impl Pils {
    /// Creates a rank for the given configuration.
    pub fn new(config: AppConfig) -> Self {
        Pils {
            config,
            steps: 10,
            packages_per_step: 64,
            work_per_package: 3_000,
        }
    }

    /// Pils Conf. 1 (2 × 16), the full-node reference case.
    pub fn conf1() -> Self {
        Self::new(Table1::PILS_CONF1)
    }

    /// Pils Conf. 2 (2 × 1).
    pub fn conf2() -> Self {
        Self::new(Table1::PILS_CONF2)
    }

    /// Pils Conf. 3 (2 × 4).
    pub fn conf3() -> Self {
        Self::new(Table1::PILS_CONF3)
    }

    /// Scales the run.
    pub fn scaled(mut self, steps: usize, packages_per_step: usize, work: u64) -> Self {
        self.steps = steps.max(1);
        self.packages_per_step = packages_per_step.max(1);
        self.work_per_package = work;
        self
    }

    /// Runs this rank on `runtime`, polling DROM through `tool` at every outer
    /// step (OmpSs would poll at every task scheduling point anyway).
    pub fn run_rank(&self, runtime: &OmpRuntime, tool: Option<&DromOmptTool>) -> PilsReport {
        let start = Instant::now();
        let packages_done = AtomicU64::new(0);
        let mut team_sizes = Vec::with_capacity(self.steps);
        for _step in 0..self.steps {
            if let Some(tool) = tool {
                tool.poll_and_apply();
            }
            team_sizes.push(runtime.max_threads());
            // Dynamic (task-like) scheduling: no static partition, so any team
            // size stays balanced.
            runtime.parallel_for(
                0..self.packages_per_step,
                Schedule::Dynamic { chunk: 1 },
                |_pkg| {
                    busy_work(self.work_per_package);
                    // SAFETY(ordering): independent progress counter; the
                    // parallel_for join publishes it before the final read.
                    packages_done.fetch_add(1, Ordering::Relaxed);
                },
            );
        }
        PilsReport {
            duration_us: start.elapsed().as_micros() as u64,
            // SAFETY(ordering): read after all worker joins; no concurrency.
            packages_done: packages_done.load(Ordering::Relaxed),
            team_sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppKind;
    use drom_core::{DromAdmin, DromFlags, DromProcess};
    use drom_cpuset::CpuSet;
    use drom_shmem::NodeShmem;
    use std::sync::Arc;

    #[test]
    fn configurations_match_table1() {
        assert_eq!(Pils::conf1().config.threads_per_task, 16);
        assert_eq!(Pils::conf2().config.threads_per_task, 1);
        assert_eq!(Pils::conf3().config.threads_per_task, 4);
        assert_eq!(Pils::conf1().config.kind, AppKind::Pils);
    }

    #[test]
    fn all_packages_execute_regardless_of_team() {
        let rt = OmpRuntime::new(4);
        let pils = Pils::conf3().scaled(3, 40, 200);
        let report = pils.run_rank(&rt, None);
        assert_eq!(report.packages_done, 3 * 40);
        assert_eq!(report.team_sizes, vec![4, 4, 4]);
        assert!(report.duration_us > 0);
    }

    #[test]
    fn expansion_is_picked_up_at_the_next_step() {
        let shmem = Arc::new(NodeShmem::new("n", 8));
        let process = Arc::new(
            DromProcess::init(1, CpuSet::from_range(0..2).unwrap(), Arc::clone(&shmem)).unwrap(),
        );
        let rt = OmpRuntime::new(8);
        let tool = drom_ompsim::DromOmptTool::new(Arc::clone(&process), Arc::clone(rt.settings()));
        // The job starts on 2 CPUs; the manager later gives it 6.
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        admin
            .set_process_mask(1, &CpuSet::from_range(0..6).unwrap(), DromFlags::default())
            .unwrap();
        let report = Pils::conf2().scaled(2, 16, 100).run_rank(&rt, Some(&tool));
        assert_eq!(
            report.team_sizes[0], 6,
            "the first step already sees the grant"
        );
        assert_eq!(report.packages_done, 32);
    }
}
