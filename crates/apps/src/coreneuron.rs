//! The CoreNeuron-like mini-app.
//!
//! CoreNeuron shares NEST's static data partition but adds a distinct,
//! memory-intensive initialization phase: Figure 13 shows lower cycles-per-µs
//! ("green color at beginning of CoreNeuron simulator shows lower cycles in
//! memory intensive initialization phase"). [`CoreNeuronSim`] therefore runs a
//! low-parallelism initialization stage before the iterative update loop.

use drom_metrics::Tracer;
use drom_ompsim::{DromOmptTool, OmpRuntime};

use crate::config::{AppConfig, Table1};
use crate::kernel::busy_work;
use crate::simulator::{SimReport, StaticPartitionSim};

/// One rank of the CoreNeuron-like simulator.
#[derive(Debug, Clone)]
pub struct CoreNeuronSim {
    /// The Table-1 configuration this rank belongs to.
    pub config: AppConfig,
    engine: StaticPartitionSim,
    /// Work units burned by the (low-parallelism) initialization phase.
    init_work: u64,
    /// Threads used during initialization (memory-bound, so few).
    init_threads: usize,
}

impl CoreNeuronSim {
    /// Creates a rank for the given configuration.
    pub fn new(config: AppConfig) -> Self {
        let engine = StaticPartitionSim::new(config.threads_per_task)
            .with_neurons_per_chunk(384)
            .with_work(4_500)
            .with_iterations(25);
        CoreNeuronSim {
            config,
            engine,
            init_work: 200_000,
            init_threads: 2,
        }
    }

    /// CoreNeuron Conf. 1 (2 × 16).
    pub fn conf1() -> Self {
        Self::new(Table1::CORENEURON_CONF1)
    }

    /// CoreNeuron Conf. 2 (4 × 8).
    pub fn conf2() -> Self {
        Self::new(Table1::CORENEURON_CONF2)
    }

    /// Scales the run down (or up).
    pub fn scaled(mut self, iterations: usize, work_per_subchunk: u64, init_work: u64) -> Self {
        self.engine = self
            .engine
            .clone()
            .with_iterations(iterations)
            .with_work(work_per_subchunk);
        self.init_work = init_work;
        self
    }

    /// The underlying iterative engine.
    pub fn engine(&self) -> &StaticPartitionSim {
        &self.engine
    }

    /// Runs this rank: the initialization phase first (on a reduced team,
    /// reproducing its limited parallelism), then the iterative update loop.
    pub fn run_rank(
        &self,
        runtime: &OmpRuntime,
        tool: Option<&DromOmptTool>,
        tracer: Option<&Tracer>,
        process_index: usize,
    ) -> SimReport {
        // Memory-bound initialization: only a couple of threads are useful.
        let init_share = self.init_work / self.init_threads.max(1) as u64;
        let saved_threads = runtime.max_threads();
        runtime.set_num_threads(self.init_threads.min(saved_threads));
        runtime.parallel(|_ctx| {
            busy_work(init_share);
        });
        runtime.set_num_threads(saved_threads);

        self.engine.run_rank(runtime, tool, tracer, process_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppKind;

    #[test]
    fn configurations_match_table1() {
        assert_eq!(CoreNeuronSim::conf1().config.threads_per_task, 16);
        assert_eq!(CoreNeuronSim::conf2().config.mpi_tasks, 4);
        assert_eq!(CoreNeuronSim::conf1().config.kind, AppKind::CoreNeuron);
        assert_eq!(CoreNeuronSim::conf1().engine().chunks, 16);
    }

    #[test]
    fn init_phase_runs_before_iterations() {
        let rt = OmpRuntime::new(4);
        let sim =
            CoreNeuronSim::new(AppConfig::new(AppKind::CoreNeuron, 1, 1, 4)).scaled(3, 400, 5_000);
        let report = sim.run_rank(&rt, None, None, 0);
        assert_eq!(report.iterations_done, 3);
        // The team size during the iterations is back to the full pool.
        assert_eq!(report.team_sizes, vec![4, 4, 4]);
        assert_eq!(rt.max_threads(), 4, "init phase restores the team size");
        // Regions: 1 init + 3 iterations.
        assert_eq!(rt.regions_executed(), 4);
    }
}
