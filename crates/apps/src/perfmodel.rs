//! Calibrated analytical performance models of the evaluation applications.
//!
//! The paper's experiments ran on MareNostrum III; we cannot reproduce the
//! absolute wall-clock numbers, so the discrete-event simulator (`drom-sim`)
//! replays the workloads using these models. Each model encodes the *mechanism*
//! the paper identifies for its application, so the serial-vs-DROM comparisons
//! keep the paper's shape:
//!
//! * **Static data partition** (NEST, CoreNeuron): data is split into as many
//!   chunks as the *initial* thread count; when DROM removes threads the
//!   orphaned chunks are redistributed with limited granularity (Figure 5 shows
//!   a removed thread's data being computed by four of the survivors), so the
//!   effective parallelism drops below the CPU count.
//! * **Thread-count locality** : IPC decreases slightly with more threads per
//!   task ("increasing IPC switching from Conf. 1 to Conf. 2"), so 4×8 runs a
//!   bit faster than 2×16 for the same CPU total.
//! * **Memory-bound saturation** (STREAM): "over two CPUs per node performance
//!   keeps constant".
//! * **Initialization phase** (CoreNeuron): a memory-intensive start with low
//!   cycles-per-µs (the green region of Figure 13).
//!
//! The absolute calibration constants (total work per application) are chosen
//! so the simulated Serial-scenario run times land in the same few-thousand
//! second range as the paper's plots; `EXPERIMENTS.md` records the resulting
//! paper-vs-measured comparison for every figure.

use serde::{Deserialize, Serialize};

use crate::config::{AppConfig, AppKind};

/// Nominal core frequency of the modelled machine in cycles per microsecond
/// (MareNostrum III Sandy Bridge nodes ran at 2.6 GHz).
pub const NOMINAL_CYCLES_PER_US: f64 = 2600.0;

/// Granularity with which orphaned static-partition chunks can be
/// redistributed: Figure 5 shows a removed thread's chunk being picked up by
/// four survivors, i.e. quarter-chunk granularity.
pub const CHUNK_SPLIT: f64 = 4.0;

/// The analytical model of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Which application this models.
    pub kind: AppKind,
    /// Total work in core-seconds (at full per-thread efficiency) for a fixed
    /// workload; ignored when [`Self::work_per_requested_cpu`] is set.
    pub total_work_core_s: f64,
    /// For benchmarks whose problem size is configured per run (Pils), the
    /// work is this many core-seconds per requested CPU.
    pub work_per_requested_cpu: Option<f64>,
    /// Per-extra-thread efficiency penalty within a task (locality/synchronisation).
    pub thread_efficiency_penalty: f64,
    /// `true` if the data is statically partitioned by the initial thread count.
    pub static_partition: bool,
    /// Memory-bound saturation: at most this many CPUs per task contribute.
    pub saturation_cpus_per_task: Option<usize>,
    /// Fraction of the work that belongs to a low-parallelism initialization phase.
    pub init_fraction: f64,
    /// Effective CPUs per task during the initialization phase.
    pub init_parallelism: f64,
    /// IPC at one thread per task.
    pub base_ipc: f64,
    /// IPC lost per extra thread per task.
    pub ipc_locality_penalty: f64,
}

impl AppModel {
    /// The calibrated model of each evaluation application.
    pub fn for_kind(kind: AppKind) -> Self {
        match kind {
            AppKind::Nest => AppModel {
                kind,
                total_work_core_s: 60_000.0,
                work_per_requested_cpu: None,
                thread_efficiency_penalty: 0.004,
                static_partition: true,
                saturation_cpus_per_task: None,
                init_fraction: 0.02,
                init_parallelism: 4.0,
                base_ipc: 1.20,
                ipc_locality_penalty: 0.006,
            },
            AppKind::CoreNeuron => AppModel {
                kind,
                total_work_core_s: 66_000.0,
                work_per_requested_cpu: None,
                thread_efficiency_penalty: 0.005,
                static_partition: true,
                saturation_cpus_per_task: None,
                init_fraction: 0.05,
                init_parallelism: 4.0,
                base_ipc: 1.35,
                ipc_locality_penalty: 0.007,
            },
            AppKind::Pils => AppModel {
                kind,
                total_work_core_s: 6_400.0,
                work_per_requested_cpu: Some(200.0),
                thread_efficiency_penalty: 0.002,
                static_partition: false,
                saturation_cpus_per_task: None,
                init_fraction: 0.0,
                init_parallelism: 1.0,
                base_ipc: 1.60,
                ipc_locality_penalty: 0.004,
            },
            AppKind::Stream => AppModel {
                kind,
                total_work_core_s: 1_200.0,
                work_per_requested_cpu: None,
                thread_efficiency_penalty: 0.0,
                static_partition: false,
                saturation_cpus_per_task: Some(2),
                init_fraction: 0.0,
                init_parallelism: 1.0,
                base_ipc: 0.55,
                ipc_locality_penalty: 0.0,
            },
        }
    }

    /// Total work (core-seconds) of a run with the given configuration.
    pub fn total_work(&self, config: &AppConfig) -> f64 {
        match self.work_per_requested_cpu {
            Some(per_cpu) => per_cpu * config.requested_cpus() as f64,
            None => self.total_work_core_s,
        }
    }

    /// Work belonging to the initialization phase.
    pub fn init_work(&self, config: &AppConfig) -> f64 {
        self.total_work(config) * self.init_fraction
    }

    /// Per-task parallel-efficiency factor for `threads` active threads.
    pub fn efficiency(&self, threads: f64) -> f64 {
        (1.0 - self.thread_efficiency_penalty * (threads - 1.0).max(0.0)).max(0.05)
    }

    /// Effective parallelism of one task that currently owns `cpus` CPUs, given
    /// that it initially started with `initial_threads` threads.
    ///
    /// For statically partitioned applications the data exists as exactly
    /// `initial_threads` chunks, fixed at launch. Shrinking redistributes the
    /// orphaned chunks with limited granularity (below); **expanding cannot
    /// invent chunks**, so the parallelism is capped at `initial_threads` no
    /// matter how many CPUs are granted. Non-partitioned applications use
    /// every CPU (up to the memory-bound saturation point).
    ///
    /// Guaranteed monotone non-decreasing in `cpus`, and constant for
    /// `cpus ≥ initial_threads` on static-partition apps.
    pub fn effective_parallelism(&self, cpus: usize, initial_threads: usize) -> f64 {
        if cpus == 0 {
            return 0.0;
        }
        let mut effective = cpus as f64;
        if let Some(saturation) = self.saturation_cpus_per_task {
            effective = effective.min(saturation as f64);
        }
        if self.static_partition {
            let initial = initial_threads.max(1);
            if cpus < initial {
                // `initial` chunks, each splittable into CHUNK_SPLIT pieces,
                // spread over `cpus` threads: the busiest thread gets
                // ceil(chunks*split / cpus) / split chunks.
                let subchunks = (initial as f64) * CHUNK_SPLIT;
                let per_thread = (subchunks / cpus as f64).ceil() / CHUNK_SPLIT;
                effective = effective.min(initial as f64 / per_thread);
            } else {
                // Expansion past the launch thread count: only `initial`
                // chunks exist, the extra CPUs idle.
                effective = effective.min(initial as f64);
            }
        }
        effective
    }

    /// Work completed per second by the whole job when every task owns
    /// `cpus_per_task` CPUs (steady, non-initialization phase).
    pub fn rate(&self, config: &AppConfig, cpus_per_task: usize) -> f64 {
        let per_task = self.effective_parallelism(cpus_per_task, config.threads_per_task)
            * self.efficiency(cpus_per_task.min(config.threads_per_task) as f64);
        per_task * config.mpi_tasks as f64
    }

    /// Work completed per second during the initialization phase.
    ///
    /// The init phase is a *low*-parallelism, memory-intensive stretch, so
    /// beyond its own parallelism bound it obeys the same caps as
    /// [`rate`](Self::rate): memory-bound saturation and the per-thread
    /// efficiency penalty. (It does not pay the static-partition penalty —
    /// the partition is what the init phase *builds*.)
    pub fn init_rate(&self, config: &AppConfig, cpus_per_task: usize) -> f64 {
        let mut per_task = (cpus_per_task as f64).min(self.init_parallelism);
        if let Some(saturation) = self.saturation_cpus_per_task {
            per_task = per_task.min(saturation as f64);
        }
        per_task *= self.efficiency(cpus_per_task.min(config.threads_per_task) as f64);
        per_task * config.mpi_tasks as f64
    }

    /// Execution time (seconds) when the per-task CPU count never changes.
    pub fn execution_time(&self, config: &AppConfig, cpus_per_task: usize) -> f64 {
        let total = self.total_work(config);
        let init = self.init_work(config);
        let main = total - init;
        let mut time = 0.0;
        if init > 0.0 {
            time += init / self.init_rate(config, cpus_per_task).max(1e-9);
        }
        time += main / self.rate(config, cpus_per_task).max(1e-9);
        time
    }

    /// Modelled IPC of a thread when its task runs `threads_per_task` threads.
    pub fn ipc(&self, threads_per_task: usize) -> f64 {
        (self.base_ipc - self.ipc_locality_penalty * (threads_per_task.saturating_sub(1)) as f64)
            .max(0.1)
    }

    /// Modelled cycles per microsecond of a thread running at the given
    /// utilization (1.0 = always running on its core).
    pub fn cycles_per_us(&self, utilization: f64) -> f64 {
        NOMINAL_CYCLES_PER_US * utilization.clamp(0.0, 1.0)
    }
}

/// Convenience holder of all four models.
#[derive(Debug, Clone)]
pub struct PerfModel {
    nest: AppModel,
    coreneuron: AppModel,
    pils: AppModel,
    stream: AppModel,
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfModel {
    /// Builds the calibrated model set.
    pub fn new() -> Self {
        PerfModel {
            nest: AppModel::for_kind(AppKind::Nest),
            coreneuron: AppModel::for_kind(AppKind::CoreNeuron),
            pils: AppModel::for_kind(AppKind::Pils),
            stream: AppModel::for_kind(AppKind::Stream),
        }
    }

    /// The model of one application.
    pub fn of(&self, kind: AppKind) -> &AppModel {
        match kind {
            AppKind::Nest => &self.nest,
            AppKind::CoreNeuron => &self.coreneuron,
            AppKind::Pils => &self.pils,
            AppKind::Stream => &self.stream,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Table1;

    #[test]
    fn nest_conf1_runs_about_two_thousand_seconds() {
        let model = AppModel::for_kind(AppKind::Nest);
        let t = model.execution_time(&Table1::NEST_CONF1, 16);
        assert!((1800.0..2400.0).contains(&t), "NEST Conf. 1 time was {t}");
    }

    #[test]
    fn conf2_is_slightly_faster_than_conf1() {
        // The paper observes higher IPC (and slightly better time) for 4x8.
        for kind in [AppKind::Nest, AppKind::CoreNeuron] {
            let model = AppModel::for_kind(kind);
            let confs = Table1::of(kind);
            let t1 = model.execution_time(&confs[0], confs[0].threads_per_task);
            let t2 = model.execution_time(&confs[1], confs[1].threads_per_task);
            assert!(t2 < t1, "{kind:?}: conf2 ({t2}) should beat conf1 ({t1})");
            assert!(t1 / t2 < 1.20, "{kind:?}: the gap should stay small");
            assert!(model.ipc(8) > model.ipc(16));
        }
    }

    #[test]
    fn pils_runtime_is_roughly_constant_across_configs() {
        let model = AppModel::for_kind(AppKind::Pils);
        let times: Vec<f64> = Table1::of(AppKind::Pils)
            .iter()
            .map(|c| model.execution_time(c, c.threads_per_task))
            .collect();
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.15,
            "Pils run time should be roughly constant, got {times:?}"
        );
        assert!((150.0..350.0).contains(&times[0]));
    }

    #[test]
    fn stream_saturates_at_two_cpus_per_task() {
        let model = AppModel::for_kind(AppKind::Stream);
        let t2 = model.execution_time(&Table1::STREAM_CONF1, 2);
        let t8 = model.execution_time(&Table1::STREAM_CONF1, 8);
        assert!(
            (t2 - t8).abs() < 1e-6,
            "extra CPUs must not speed STREAM up"
        );
        let t1 = model.execution_time(&Table1::STREAM_CONF1, 1);
        assert!(t1 > t2, "one CPU per task is slower than two");
    }

    #[test]
    fn static_partition_penalises_partial_shrink() {
        let model = AppModel::for_kind(AppKind::Nest);
        // Started with 16 threads.
        let full = model.effective_parallelism(16, 16);
        assert!((full - 16.0).abs() < 1e-9);
        // Removing one thread costs more than one thread's worth of throughput.
        let fifteen = model.effective_parallelism(15, 16);
        assert!(
            fifteen < 13.0,
            "15 CPUs should be well below 15 effective, got {fifteen}"
        );
        // Exactly half the threads divides evenly: no imbalance beyond the halving.
        let eight = model.effective_parallelism(8, 16);
        assert!((eight - 8.0).abs() < 1e-9);
        // Monotonic in the CPU count.
        let twelve = model.effective_parallelism(12, 16);
        assert!(twelve <= 16.0 && twelve >= eight);
        // A non-partitioned app loses nothing.
        let pils = AppModel::for_kind(AppKind::Pils);
        assert!((pils.effective_parallelism(15, 16) - 15.0).abs() < 1e-9);
    }

    /// Regression (static-partition expansion over-speedup): a static app
    /// launched with `initial_threads` threads partitioned its data into that
    /// many chunks; granting it *more* CPUs later cannot invent chunks, so
    /// the effective parallelism must stay capped at the chunk count. The
    /// pre-fix model returned `cpus as f64` for `cpus > initial_threads`,
    /// granting linear speedup on expansion.
    #[test]
    fn static_partition_expansion_does_not_invent_chunks() {
        for kind in [AppKind::Nest, AppKind::CoreNeuron] {
            let model = AppModel::for_kind(kind);
            assert_eq!(model.effective_parallelism(9, 8), 8.0, "{kind:?}");
            assert_eq!(model.effective_parallelism(16, 8), 8.0, "{kind:?}");
            assert_eq!(model.effective_parallelism(64, 8), 8.0, "{kind:?}");
        }
        // Non-partitioned apps still scale past their launch thread count
        // (up to the saturation point).
        let pils = AppModel::for_kind(AppKind::Pils);
        assert_eq!(pils.effective_parallelism(16, 8), 16.0);
        let stream = AppModel::for_kind(AppKind::Stream);
        assert_eq!(stream.effective_parallelism(16, 8), 2.0);
    }

    /// Whole-run level: granting a static-partition app twice its launch
    /// thread count must not change its execution time (the chunks are the
    /// bottleneck, not the CPUs). Pre-fix the 16-CPU run claimed ~half the
    /// 8-thread time.
    #[test]
    fn static_partition_execution_time_is_flat_beyond_launch_threads() {
        let model = AppModel::for_kind(AppKind::Nest);
        let conf = Table1::NEST_CONF2; // 4 tasks × 8 threads
        let at_launch = model.execution_time(&conf, 8);
        let expanded = model.execution_time(&conf, 16);
        assert!(
            (expanded - at_launch).abs() < 1e-9,
            "expansion past the partition must be free of speedup: \
             {at_launch} vs {expanded}"
        );
    }

    proptest::proptest! {
        /// `effective_parallelism(cpus, initial)` is monotone non-decreasing
        /// in `cpus` and constant for `cpus ≥ initial` on static-partition
        /// apps.
        #[test]
        fn effective_parallelism_is_monotone_and_flat_beyond_initial(
            initial in 1usize..64,
            probe in 1usize..64,
        ) {
            for kind in [
                AppKind::Nest,
                AppKind::CoreNeuron,
                AppKind::Pils,
                AppKind::Stream,
            ] {
                let model = AppModel::for_kind(kind);
                let mut prev = 0.0;
                for cpus in 0..=probe.max(initial) + 4 {
                    let e = model.effective_parallelism(cpus, initial);
                    proptest::prop_assert!(
                        e >= prev - 1e-12,
                        "{:?}: not monotone at cpus={}, initial={}",
                        kind, cpus, initial
                    );
                    if model.static_partition && cpus >= initial {
                        proptest::prop_assert!(
                            (e - model.effective_parallelism(initial, initial)).abs()
                                < 1e-12,
                            "{:?}: not constant beyond initial at cpus={}",
                            kind, cpus
                        );
                    }
                    prev = e;
                }
            }
        }
    }

    /// Regression (init outrunning steady state): the init phase is a *low*
    /// parallelism, memory-intensive stretch, so it obeys the same saturation
    /// and thread-efficiency caps as the steady rate. Pre-fix,
    /// `init_rate` ignored both, so a memory-bound configuration could
    /// complete its init *faster* than its steady-state rate allows.
    #[test]
    fn init_rate_respects_saturation_and_efficiency_caps() {
        // A memory-bound app (saturates at 2 CPUs per task) with an init
        // phase that claims 4-way parallelism.
        let mut model = AppModel::for_kind(AppKind::Stream);
        model.init_fraction = 0.1;
        model.init_parallelism = 4.0;
        model.thread_efficiency_penalty = 0.01;
        let config = Table1::STREAM_CONF1;
        for cpus in 1..=16 {
            assert!(
                model.init_rate(&config, cpus) <= model.rate(&config, cpus) + 1e-9,
                "init must not outrun the saturated steady rate at {cpus} CPUs"
            );
        }
        // The thread-efficiency cap applies even without saturation.
        let nest = AppModel::for_kind(AppKind::Nest);
        let conf = Table1::NEST_CONF1;
        assert!(
            nest.init_rate(&conf, 16) < nest.init_parallelism * conf.mpi_tasks as f64,
            "16 busy threads pay the same locality penalty during init"
        );
    }

    #[test]
    fn zero_cpus_means_zero_rate() {
        let model = AppModel::for_kind(AppKind::Nest);
        assert_eq!(model.effective_parallelism(0, 16), 0.0);
        assert_eq!(model.rate(&Table1::NEST_CONF1, 0), 0.0);
    }

    #[test]
    fn ipc_and_cycles_are_bounded() {
        let model = AppModel::for_kind(AppKind::CoreNeuron);
        assert!(model.ipc(1) > model.ipc(16));
        assert!(model.ipc(1000) >= 0.1);
        assert_eq!(model.cycles_per_us(1.0), NOMINAL_CYCLES_PER_US);
        assert_eq!(model.cycles_per_us(2.0), NOMINAL_CYCLES_PER_US);
        assert_eq!(model.cycles_per_us(-1.0), 0.0);
    }

    #[test]
    fn perfmodel_lookup() {
        let pm = PerfModel::new();
        assert_eq!(pm.of(AppKind::Nest).kind, AppKind::Nest);
        assert_eq!(pm.of(AppKind::Stream).kind, AppKind::Stream);
        assert!(pm.of(AppKind::CoreNeuron).init_fraction > pm.of(AppKind::Nest).init_fraction);
    }

    #[test]
    fn use_case_1_shape_nest_plus_pils() {
        // Reproduce the scenario arithmetic used by Figure 4 and check the
        // qualitative claims: DROM total run time beats Serial, the analytics
        // response collapses, the simulation degrades only a little.
        let nest = AppModel::for_kind(AppKind::Nest);
        let pils = AppModel::for_kind(AppKind::Pils);
        let nest_conf = Table1::NEST_CONF1;
        let pils_conf = Table1::PILS_CONF2;

        // Keep both scenarios on the same footing by ignoring the (small)
        // initialization phase: the DROM arithmetic below models only the
        // steady-state rate.
        let nest_alone = nest.total_work(&nest_conf) / nest.rate(&nest_conf, 16);
        let pils_alone = pils.execution_time(&pils_conf, 1);

        // Serial: analytics waits for the simulation.
        let serial_total = nest_alone + pils_alone;

        // DROM: the analytics takes one CPU per node from the simulation.
        let shrunk_rate = nest.rate(&nest_conf, 15);
        let full_rate = nest.rate(&nest_conf, 16);
        let work_during_overlap = shrunk_rate * pils_alone;
        let nest_drom =
            pils_alone + (nest.total_work(&nest_conf) - work_during_overlap) / full_rate;
        let drom_total = nest_drom.max(pils_alone);

        assert!(
            drom_total < serial_total,
            "DROM must improve total run time"
        );
        let improvement = (serial_total - drom_total) / serial_total * 100.0;
        assert!(
            (1.0..20.0).contains(&improvement),
            "total run time improvement should be moderate, got {improvement:.1}%"
        );
        let nest_degradation = (nest_drom - nest_alone) / nest_alone * 100.0;
        assert!(
            (0.0..10.0).contains(&nest_degradation),
            "NEST should degrade only slightly, got {nest_degradation:.1}%"
        );
    }
}
