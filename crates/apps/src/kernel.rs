//! Computational kernels used by the executable mini-apps.
//!
//! The kernels are deliberately simple and deterministic: the point is not to
//! simulate neurons but to occupy CPUs for a controllable amount of work so
//! that malleability effects (imbalance, saturation) are observable and
//! repeatable in tests and traces.

/// Performs `units` units of compute-bound work and returns a checksum (so the
/// optimiser cannot remove the loop). One unit is a short dependent-arithmetic
/// chain, roughly a few nanoseconds on current hardware.
pub fn busy_work(units: u64) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..units {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407 ^ i);
        acc ^= acc >> 29;
    }
    std::hint::black_box(acc)
}

/// The STREAM triad (`a[i] = b[i] + scalar * c[i]`) over the given slices.
/// Returns the number of bytes moved (three arrays touched per element).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn stream_triad(a: &mut [f64], b: &[f64], c: &[f64], scalar: f64) -> usize {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for i in 0..a.len() {
        a[i] = b[i] + scalar * c[i];
    }
    std::hint::black_box(a.len() * 3 * std::mem::size_of::<f64>())
}

/// A tiny leaky-integrate-and-fire style update used by the neuro-simulator
/// mini-apps: advances `neurons` membrane potentials one step and returns the
/// number that "spiked". Deterministic for a given input.
pub fn lif_step(potentials: &mut [f64], input_current: f64, threshold: f64) -> usize {
    let mut spikes = 0;
    for v in potentials.iter_mut() {
        *v = *v * 0.95 + input_current;
        if *v >= threshold {
            *v = 0.0;
            spikes += 1;
        }
    }
    std::hint::black_box(spikes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_work_is_deterministic_and_scales() {
        assert_eq!(busy_work(1000), busy_work(1000));
        assert_ne!(busy_work(1000), busy_work(1001));
        assert_eq!(busy_work(0), busy_work(0));
    }

    #[test]
    fn triad_computes_and_counts_bytes() {
        let mut a = vec![0.0; 8];
        let b = vec![1.0; 8];
        let c = vec![2.0; 8];
        let bytes = stream_triad(&mut a, &b, &c, 3.0);
        assert!(a.iter().all(|&x| (x - 7.0).abs() < 1e-12));
        assert_eq!(bytes, 8 * 3 * 8);
    }

    #[test]
    #[should_panic]
    fn triad_length_mismatch_panics() {
        let mut a = vec![0.0; 4];
        let b = vec![0.0; 5];
        let c = vec![0.0; 4];
        stream_triad(&mut a, &b, &c, 1.0);
    }

    #[test]
    fn lif_step_spikes_above_threshold() {
        let mut v = vec![0.0, 0.9, 2.0];
        let spikes = lif_step(&mut v, 0.2, 1.0);
        // 2.0*0.95+0.2 = 2.1 >= 1.0 spikes; 0.9*0.95+0.2 = 1.055 spikes too.
        assert_eq!(spikes, 2);
        assert_eq!(v[2], 0.0);
        // The sub-threshold neuron integrates.
        assert!((v[0] - 0.2).abs() < 1e-12);
    }
}
