//! The generic malleable-application driver of Listing 1.
//!
//! Listing 1 of the paper shows the minimal pattern an application follows to
//! become DROM-responsive without a supported programming model: initialise
//! DLB, poll DROM before each malleable phase, adapt, compute, finalise.
//! [`MalleableDriver`] packages that pattern: it owns the DROM process handle,
//! an OpenMP-like runtime sized to the node, and the DROM OMPT tool, and runs a
//! user-provided iteration body between malleability points.

use std::sync::Arc;
use std::time::{Duration, Instant};

use drom_core::{DromEnviron, DromProcess, DromResult, Pid};
use drom_cpuset::CpuSet;
use drom_ompsim::{DromOmptTool, OmpRuntime};
use drom_shmem::NodeShmem;

/// Timing record of one iteration of the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationReport {
    /// Iteration index.
    pub iteration: usize,
    /// Team size used for the iteration.
    pub team_size: usize,
    /// Wall-clock duration of the iteration body.
    pub duration: Duration,
    /// Whether a DROM mask change was applied right before this iteration.
    pub mask_changed: bool,
}

/// Summary of a whole driver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Per-iteration records.
    pub iterations: Vec<IterationReport>,
    /// Total wall-clock duration.
    pub total: Duration,
    /// Mask changes applied during the run.
    pub mask_changes: u64,
}

impl RunReport {
    /// Team size of the last iteration (None for empty runs).
    pub fn final_team_size(&self) -> Option<usize> {
        self.iterations.last().map(|i| i.team_size)
    }
}

/// Owns the pieces a malleable iterative application needs.
pub struct MalleableDriver {
    process: Arc<DromProcess>,
    runtime: OmpRuntime,
    tool: Arc<DromOmptTool>,
}

impl MalleableDriver {
    /// Initialises DLB for `pid` with `initial_mask` on `shmem` and builds a
    /// runtime sized to the node.
    pub fn init(pid: Pid, initial_mask: CpuSet, shmem: Arc<NodeShmem>) -> DromResult<Self> {
        let node_cpus = shmem.node_cpus();
        let process = Arc::new(DromProcess::init(pid, initial_mask, shmem)?);
        let runtime = OmpRuntime::new(node_cpus.max(1));
        let tool = DromOmptTool::attach(&runtime, Arc::clone(&process));
        Ok(MalleableDriver {
            process,
            runtime,
            tool,
        })
    }

    /// Initialises the driver for a process launched through `DROM_PreInit`
    /// (e.g. by `drom-slurm`'s `Srun`).
    pub fn from_environ(environ: &DromEnviron, shmem: Arc<NodeShmem>) -> DromResult<Self> {
        Self::init(environ.pid, environ.mask.clone(), shmem)
    }

    /// The DROM process handle.
    pub fn process(&self) -> &Arc<DromProcess> {
        &self.process
    }

    /// The OpenMP-like runtime.
    pub fn runtime(&self) -> &OmpRuntime {
        &self.runtime
    }

    /// The DROM OMPT tool (poll/apply entry point).
    pub fn tool(&self) -> &Arc<DromOmptTool> {
        &self.tool
    }

    /// Runs `iterations` iterations of `body`, polling DROM before each one
    /// (Listing 1's `DLB_PollDROM` + `modify_num_resources` pattern).
    pub fn run_iterations<F>(&self, iterations: usize, body: F) -> RunReport
    where
        F: Fn(&OmpRuntime, usize),
    {
        let start = Instant::now();
        let mut reports = Vec::with_capacity(iterations);
        let changes_before = self.tool.mask_changes();
        for iteration in 0..iterations {
            let mask_changed = self.tool.poll_and_apply();
            let team_size = self.runtime.max_threads();
            let t0 = Instant::now();
            body(&self.runtime, iteration);
            reports.push(IterationReport {
                iteration,
                team_size,
                duration: t0.elapsed(),
                mask_changed,
            });
        }
        RunReport {
            iterations: reports,
            total: start.elapsed(),
            mask_changes: self.tool.mask_changes() - changes_before,
        }
    }

    /// Finalises DLB (unregisters the process).
    pub fn finalize(self) -> DromResult<()> {
        self.process.finalize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_core::{DromAdmin, DromFlags};

    #[test]
    fn listing1_pattern_adapts_between_iterations() {
        let shmem = Arc::new(NodeShmem::new("n", 8));
        let driver = MalleableDriver::init(1, CpuSet::first_n(8), Arc::clone(&shmem)).unwrap();
        assert_eq!(driver.process().num_cpus(), 8);

        let admin = DromAdmin::attach(Arc::clone(&shmem));
        // Shrink after the first iteration has been set up: we post it now and
        // the driver applies it at its next malleability point.
        admin
            .set_process_mask(1, &CpuSet::first_n(2), DromFlags::default())
            .unwrap();

        let report = driver.run_iterations(3, |rt, _i| {
            rt.parallel(|_ctx| {
                crate::kernel::busy_work(100);
            });
        });
        assert_eq!(report.iterations.len(), 3);
        assert_eq!(report.mask_changes, 1);
        assert!(report.iterations[0].mask_changed);
        assert_eq!(report.iterations[0].team_size, 2);
        assert_eq!(report.final_team_size(), Some(2));
        assert!(report.total >= report.iterations.iter().map(|i| i.duration).sum());

        driver.finalize().unwrap();
        assert!(shmem.pid_list().is_empty());
    }

    #[test]
    fn from_environ_adopts_reserved_mask() {
        let shmem = Arc::new(NodeShmem::new("n", 8));
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        let (environ, _) = admin
            .pre_init(9, &CpuSet::from_range(2..6).unwrap(), DromFlags::default())
            .unwrap();
        let driver = MalleableDriver::from_environ(&environ, Arc::clone(&shmem)).unwrap();
        assert_eq!(driver.process().num_cpus(), 4);
        assert_eq!(driver.runtime().max_threads(), 4);
    }
}
