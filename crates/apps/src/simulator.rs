//! The shared engine of the two neuro-simulator mini-apps.
//!
//! Both NEST and CoreNeuron share the property that matters for DROM: "its
//! data is statically partitioned according to the maximum number of
//! computational resources during initialization … when applying malleability
//! to shrink NEST, the tasks not computed by the removed thread are computed by
//! some of the remaining resources, creating imbalance" (Section 6.1 and
//! Figure 5). [`StaticPartitionSim`] reproduces that structure: the neuron
//! population is split into as many chunks as the *initial* thread count, each
//! chunk further divisible into four sub-chunks, and every iteration processes
//! all sub-chunks on whatever team the runtime currently has.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use drom_metrics::{ThreadState, Tracer};
use drom_ompsim::{DromOmptTool, OmpRuntime};

use crate::kernel::{busy_work, lif_step};

/// How many sub-chunks each static chunk can be split into when redistributing
/// work to a smaller team (matches `perfmodel::CHUNK_SPLIT`).
pub const SUBCHUNKS_PER_CHUNK: usize = 4;

/// Result of running one rank of a static-partition simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Wall-clock duration of the run.
    pub duration: std::time::Duration,
    /// Busy time (µs) accumulated by each thread slot of the runtime.
    pub per_thread_busy_us: Vec<u64>,
    /// Sub-chunks processed by each thread slot (deterministic work counter).
    pub per_thread_subchunks: Vec<u64>,
    /// Team size observed at each iteration.
    pub team_sizes: Vec<usize>,
    /// Iterations executed.
    pub iterations_done: usize,
    /// Total spikes produced (checksum; deterministic for a given setup).
    pub total_spikes: u64,
}

impl SimReport {
    fn ratio(values: &[f64]) -> f64 {
        let active: Vec<f64> = values.iter().copied().filter(|&b| b > 0.0).collect();
        if active.is_empty() {
            return 1.0;
        }
        let max = active.iter().cloned().fold(0.0f64, f64::max);
        let avg = active.iter().sum::<f64>() / active.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Imbalance of the run measured on wall-clock busy time: max per-thread
    /// busy time over the average of the threads that did any work
    /// (1.0 = perfectly balanced). This is the Figure 5 metric.
    pub fn imbalance(&self) -> f64 {
        Self::ratio(
            &self
                .per_thread_busy_us
                .iter()
                .map(|&b| b as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Imbalance measured on the deterministic work counters (sub-chunks per
    /// thread); independent of timer noise, used by the tests.
    pub fn work_imbalance(&self) -> f64 {
        Self::ratio(
            &self
                .per_thread_subchunks
                .iter()
                .map(|&b| b as f64)
                .collect::<Vec<_>>(),
        )
    }
}

/// One rank of a hybrid (MPI × OpenMP) neuro-simulator with a static data
/// partition.
#[derive(Debug, Clone)]
pub struct StaticPartitionSim {
    /// Number of static chunks (fixed at the *initial* thread count).
    pub chunks: usize,
    /// Neurons per chunk (size of the per-chunk state updated every iteration).
    pub neurons_per_chunk: usize,
    /// Extra compute-bound work units per sub-chunk per iteration.
    pub work_per_subchunk: u64,
    /// Iterations (simulation time steps) to run.
    pub iterations: usize,
    /// If `true`, the data is repartitioned to the current team size at every
    /// iteration — the "fully malleable" variant the paper says would remove
    /// the imbalance.
    pub fully_malleable: bool,
}

impl StaticPartitionSim {
    /// Creates a rank-level simulator with `initial_threads` static chunks.
    pub fn new(initial_threads: usize) -> Self {
        StaticPartitionSim {
            chunks: initial_threads.max(1),
            neurons_per_chunk: 256,
            work_per_subchunk: 2_000,
            iterations: 20,
            fully_malleable: false,
        }
    }

    /// Sets the number of iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets the per-sub-chunk compute work.
    pub fn with_work(mut self, units: u64) -> Self {
        self.work_per_subchunk = units;
        self
    }

    /// Sets the neurons per chunk.
    pub fn with_neurons_per_chunk(mut self, neurons: usize) -> Self {
        self.neurons_per_chunk = neurons.max(1);
        self
    }

    /// Switches to the fully malleable (repartitioning) variant.
    pub fn fully_malleable(mut self) -> Self {
        self.fully_malleable = true;
        self
    }

    /// Runs this rank's iterations on `runtime`.
    ///
    /// At the top of every iteration the rank polls DROM (through `tool`, when
    /// given) exactly like Listing 1 of the paper; the OMPT integration would
    /// poll at the parallel construct anyway, but the explicit poll lets
    /// non-OMPT configurations stay malleable too. `tracer`, when given,
    /// receives per-thread running/idle state events and per-process mask
    /// changes (this is the data behind Figure 5).
    pub fn run_rank(
        &self,
        runtime: &OmpRuntime,
        tool: Option<&DromOmptTool>,
        tracer: Option<&Tracer>,
        process_index: usize,
    ) -> SimReport {
        let pool = runtime.settings().pool_size();
        let busy_us: Vec<AtomicU64> = (0..pool).map(|_| AtomicU64::new(0)).collect();
        let subchunk_counts: Vec<AtomicU64> = (0..pool).map(|_| AtomicU64::new(0)).collect();
        let mut neurons: Vec<Vec<f64>> = vec![vec![0.5; self.neurons_per_chunk]; self.chunks];
        let neuron_chunks: Vec<Mutex<&mut Vec<f64>>> = neurons.iter_mut().map(Mutex::new).collect();
        let mut team_sizes = Vec::with_capacity(self.iterations);
        let total_spikes = AtomicU64::new(0);

        let start = Instant::now();
        for iteration in 0..self.iterations {
            // Malleability point (Listing 1): poll DROM before the parallel
            // region and adapt the team if the mask changed.
            if let Some(tool) = tool {
                if tool.poll_and_apply() {
                    if let Some(tracer) = tracer {
                        tracer.mask_change(
                            start.elapsed().as_micros() as u64,
                            process_index,
                            &tool.process().current_mask(),
                        );
                    }
                }
            }
            let team_size = runtime.max_threads();
            team_sizes.push(team_size);

            // The static partition: `chunks * SUBCHUNKS_PER_CHUNK` sub-chunks,
            // distributed round-robin over the current team. In the fully
            // malleable variant the partition follows the team size instead.
            let effective_chunks = if self.fully_malleable {
                team_size
            } else {
                self.chunks
            };
            let total_subchunks = effective_chunks * SUBCHUNKS_PER_CHUNK;

            runtime.parallel(|ctx| {
                let t0 = Instant::now();
                if let Some(tracer) = tracer {
                    tracer.state(
                        start.elapsed().as_micros() as u64,
                        process_index,
                        ctx.thread_num,
                        ThreadState::Running,
                    );
                }
                let mut spikes_local = 0u64;
                let mut sub = ctx.thread_num;
                while sub < total_subchunks {
                    let chunk = (sub / SUBCHUNKS_PER_CHUNK).min(self.chunks - 1);
                    // Update this chunk's neuron state (the sub-chunk updates a
                    // quarter of the chunk) and burn the compute work.
                    {
                        let mut chunk_state = neuron_chunks[chunk].lock();
                        let len = chunk_state.len();
                        let lo = (sub % SUBCHUNKS_PER_CHUNK) * len / SUBCHUNKS_PER_CHUNK;
                        let hi = ((sub % SUBCHUNKS_PER_CHUNK) + 1) * len / SUBCHUNKS_PER_CHUNK;
                        spikes_local += lif_step(&mut chunk_state[lo..hi], 0.35, 1.0) as u64;
                    }
                    busy_work(self.work_per_subchunk);
                    // SAFETY(ordering): per-thread work counters; the
                    // parallel-region join publishes them before the report
                    // reads below.
                    subchunk_counts[ctx.thread_num].fetch_add(1, Ordering::Relaxed);
                    sub += ctx.team_size;
                }
                // SAFETY(ordering): accumulators only; published by the join.
                total_spikes.fetch_add(spikes_local, Ordering::Relaxed);
                busy_us[ctx.thread_num]
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                if let Some(tracer) = tracer {
                    tracer.state(
                        start.elapsed().as_micros() as u64,
                        process_index,
                        ctx.thread_num,
                        ThreadState::Idle,
                    );
                }
            });
            let _ = iteration;
        }

        SimReport {
            duration: start.elapsed(),
            // SAFETY(ordering): all reads below happen after the last
            // parallel-region join; no thread is still writing.
            per_thread_busy_us: busy_us.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            per_thread_subchunks: subchunk_counts
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            team_sizes,
            iterations_done: self.iterations,
            // SAFETY(ordering): read after the region join, as above.
            total_spikes: total_spikes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_core::{DromAdmin, DromFlags, DromProcess};
    use drom_cpuset::CpuSet;
    use drom_shmem::NodeShmem;
    use std::sync::Arc;

    fn small_sim(threads: usize) -> StaticPartitionSim {
        StaticPartitionSim::new(threads)
            .with_iterations(4)
            .with_work(200)
            .with_neurons_per_chunk(64)
    }

    #[test]
    fn runs_all_iterations_and_reports() {
        let rt = OmpRuntime::new(4);
        let report = small_sim(4).run_rank(&rt, None, None, 0);
        assert_eq!(report.iterations_done, 4);
        assert_eq!(report.team_sizes, vec![4, 4, 4, 4]);
        assert_eq!(report.per_thread_busy_us.len(), 4);
        assert!(report.per_thread_busy_us.iter().all(|&b| b > 0));
        // 4 chunks x 4 sub-chunks x 4 iterations = 64 sub-chunks, 16 each.
        assert_eq!(report.per_thread_subchunks, vec![16, 16, 16, 16]);
        assert!(report.total_spikes > 0);
        assert!(report.imbalance() >= 1.0);
        assert!((report.work_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn static_partition_shows_imbalance_after_shrink() {
        // 4 chunks but only 3 threads: one thread carries extra sub-chunks.
        let rt = OmpRuntime::new(4);
        rt.set_num_threads(3);
        let report = small_sim(4).with_iterations(6).run_rank(&rt, None, None, 0);
        assert_eq!(report.team_sizes[0], 3);
        // Thread 3 never ran.
        assert_eq!(report.per_thread_subchunks[3], 0);
        assert_eq!(report.per_thread_busy_us[3], 0);
        // 16 sub-chunks over 3 threads -> 6/5/5 per iteration.
        assert_eq!(
            report.per_thread_subchunks[..3],
            [36, 30, 30],
            "round-robin distribution of orphaned sub-chunks"
        );
        assert!(
            report.work_imbalance() > 1.1,
            "expected visible imbalance, got {}",
            report.work_imbalance()
        );
    }

    #[test]
    fn fully_malleable_variant_rebalances() {
        let rt = OmpRuntime::new(4);
        rt.set_num_threads(3);
        let report = small_sim(4)
            .with_iterations(6)
            .fully_malleable()
            .run_rank(&rt, None, None, 0);
        assert!(
            (report.work_imbalance() - 1.0).abs() < 1e-12,
            "fully malleable run should be balanced, got {}",
            report.work_imbalance()
        );
    }

    #[test]
    fn drom_shrink_is_applied_at_iteration_boundary() {
        let shmem = Arc::new(NodeShmem::new("n", 8));
        let process =
            Arc::new(DromProcess::init(1, CpuSet::first_n(8), Arc::clone(&shmem)).unwrap());
        let rt = OmpRuntime::new(8);
        let tool = DromOmptTool::new(Arc::clone(&process), Arc::clone(rt.settings()));
        // Post the shrink before the run starts: the first iteration already
        // observes it.
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        admin
            .set_process_mask(1, &CpuSet::from_range(0..4).unwrap(), DromFlags::default())
            .unwrap();
        let tracer = Tracer::new();
        let report = small_sim(8).run_rank(&rt, Some(&tool), Some(&tracer), 0);
        assert_eq!(report.team_sizes[0], 4);
        assert!(report.team_sizes.iter().all(|&t| t == 4));
        // The mask change was traced.
        assert!(tracer
            .events()
            .iter()
            .any(|e| matches!(e.kind, drom_metrics::EventKind::MaskChange { .. })));
    }

    #[test]
    fn spike_counts_are_deterministic_for_fixed_team() {
        let rt = OmpRuntime::new(2);
        let a = small_sim(2).run_rank(&rt, None, None, 0);
        let b = small_sim(2).run_rank(&rt, None, None, 0);
        assert_eq!(a.total_spikes, b.total_spikes);
    }
}
