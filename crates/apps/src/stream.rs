//! The STREAM-like mini-app: a memory-bandwidth-bound analytics workload.
//!
//! STREAM "is a benchmark intended to measure sustainable memory bandwidth …
//! we configured it to run multiple iterations with an 8GB dataset … the
//! application is memory bound and over two CPUs per node performance keeps
//! constant." The mini-app runs repeated triads over a configurable dataset;
//! its report exposes the achieved bandwidth so the saturation behaviour can be
//! observed (and is asserted in the tests at a coarse level).

use std::time::Instant;

use parking_lot::Mutex;

use drom_ompsim::{DromOmptTool, OmpRuntime, Schedule};

use crate::config::{AppConfig, Table1};
use crate::kernel::stream_triad;

/// Result of one STREAM rank run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Wall-clock duration.
    pub duration_us: u64,
    /// Bytes moved across all iterations.
    pub bytes_moved: usize,
    /// Achieved bandwidth in MiB/s (wall-clock based).
    pub bandwidth_mib_s: f64,
    /// Team size observed at each iteration.
    pub team_sizes: Vec<usize>,
}

/// One rank of the STREAM-like benchmark.
#[derive(Debug, Clone)]
pub struct Stream {
    /// The Table-1 configuration this rank belongs to.
    pub config: AppConfig,
    /// Elements per array (the paper uses an 8 GB dataset; tests scale down).
    pub elements: usize,
    /// Triad iterations to run.
    pub iterations: usize,
}

impl Stream {
    /// Creates a rank for the given configuration.
    pub fn new(config: AppConfig) -> Self {
        Stream {
            config,
            elements: 1 << 20,
            iterations: 10,
        }
    }

    /// STREAM Conf. 1 (2 × 2).
    pub fn conf1() -> Self {
        Self::new(Table1::STREAM_CONF1)
    }

    /// Scales the run.
    pub fn scaled(mut self, elements: usize, iterations: usize) -> Self {
        self.elements = elements.max(1);
        self.iterations = iterations.max(1);
        self
    }

    /// Runs this rank on `runtime`, polling DROM through `tool` each iteration.
    pub fn run_rank(&self, runtime: &OmpRuntime, tool: Option<&DromOmptTool>) -> StreamReport {
        let start = Instant::now();
        let mut a = vec![0.0f64; self.elements];
        let b = vec![1.5f64; self.elements];
        let c = vec![2.5f64; self.elements];
        let mut bytes_moved = 0usize;
        let mut team_sizes = Vec::with_capacity(self.iterations);

        for _iter in 0..self.iterations {
            if let Some(tool) = tool {
                tool.poll_and_apply();
            }
            let team = runtime.max_threads();
            team_sizes.push(team);
            // Split the arrays into one block per team member; each block runs
            // the triad. The slices are handed out through a mutex-protected
            // cursor so the borrow stays safe without unsafe chunking.
            let blocks: Vec<(usize, usize)> = (0..team)
                .map(|t| {
                    let (lo, hi) = Schedule::static_block(self.elements, team, t);
                    (lo, hi)
                })
                .collect();
            let a_chunks: Vec<Mutex<&mut [f64]>> = {
                let mut rest: &mut [f64] = &mut a;
                let mut out = Vec::with_capacity(team);
                let mut consumed = 0usize;
                for &(lo, hi) in &blocks {
                    let (chunk, tail) = rest.split_at_mut(hi - lo);
                    debug_assert_eq!(consumed, lo);
                    consumed += hi - lo;
                    out.push(Mutex::new(chunk));
                    rest = tail;
                }
                out
            };
            runtime.parallel(|ctx| {
                let (lo, hi) = blocks[ctx.thread_num];
                if hi > lo {
                    let mut chunk = a_chunks[ctx.thread_num].lock();
                    stream_triad(&mut chunk, &b[lo..hi], &c[lo..hi], 3.0);
                }
            });
            bytes_moved += self.elements * 3 * std::mem::size_of::<f64>();
        }

        let duration_us = start.elapsed().as_micros().max(1) as u64;
        StreamReport {
            duration_us,
            bytes_moved,
            bandwidth_mib_s: bytes_moved as f64 / (1024.0 * 1024.0) / (duration_us as f64 / 1e6),
            team_sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppKind;

    #[test]
    fn configuration_matches_table1() {
        let s = Stream::conf1();
        assert_eq!(s.config.kind, AppKind::Stream);
        assert_eq!(s.config.mpi_tasks, 2);
        assert_eq!(s.config.threads_per_task, 2);
    }

    #[test]
    fn triad_runs_and_reports_bandwidth() {
        let rt = OmpRuntime::new(2);
        let report = Stream::conf1().scaled(1 << 14, 4).run_rank(&rt, None);
        assert_eq!(report.team_sizes, vec![2, 2, 2, 2]);
        assert_eq!(report.bytes_moved, (1 << 14) * 3 * 8 * 4);
        assert!(report.bandwidth_mib_s > 0.0);
        assert!(report.duration_us > 0);
    }

    #[test]
    fn result_is_correct_with_any_team_size() {
        // The triad result must be identical no matter how many threads run it;
        // verify by comparing the checksum of `a` after runs with 1 and 3 threads.
        let elements = 4096;
        let run = |threads: usize| -> f64 {
            let rt = OmpRuntime::new(threads);
            let mut a = vec![0.0f64; elements];
            let b = vec![1.5f64; elements];
            let c = vec![2.5f64; elements];
            let blocks: Vec<(usize, usize)> = (0..threads)
                .map(|t| Schedule::static_block(elements, threads, t))
                .collect();
            let chunks: Vec<Mutex<&mut [f64]>> = {
                let mut rest: &mut [f64] = &mut a;
                let mut out = Vec::new();
                for &(lo, hi) in &blocks {
                    let (chunk, tail) = rest.split_at_mut(hi - lo);
                    out.push(Mutex::new(chunk));
                    rest = tail;
                }
                out
            };
            rt.parallel(|ctx| {
                let (lo, hi) = blocks[ctx.thread_num];
                if hi > lo {
                    let mut chunk = chunks[ctx.thread_num].lock();
                    stream_triad(&mut chunk, &b[lo..hi], &c[lo..hi], 3.0);
                }
            });
            drop(chunks);
            a.iter().sum()
        };
        let one = run(1);
        let three = run(3);
        assert!((one - three).abs() < 1e-9);
        assert!((one - 4096.0 * 9.0).abs() < 1e-6);
    }
}
