//! The evaluation workloads of the DROM paper.
//!
//! Section 6 uses four applications:
//!
//! * **NEST** — a spiking neural-network simulator (MPI + OpenMP), modified to
//!   be malleable; its data is statically partitioned by the initial thread
//!   count, which causes imbalance when threads are removed (Figure 5).
//! * **CoreNeuron** — a neuron simulator (MPI + OpenMP) with the same static
//!   partition property plus a memory-intensive initialization phase.
//! * **Pils** — a compute-bound synthetic benchmark (MPI + OmpSs) standing in
//!   for an in-situ analytics/visualization tool.
//! * **STREAM** — the memory-bandwidth benchmark (MPI + OpenMP), configured so
//!   that beyond two CPUs per node its performance stays constant.
//!
//! This crate provides two complementary reproductions of each:
//!
//! * **Executable mini-apps** ([`nest`], [`coreneuron`], [`pils`], [`stream`])
//!   built on the `drom-ompsim`/`drom-mpisim` substrates. They really run on
//!   threads, really poll DROM, and really show the imbalance / saturation
//!   effects — scaled down so they execute in milliseconds.
//! * **Analytical performance models** ([`perfmodel`]) calibrated to the
//!   paper's reported magnitudes, used by the discrete-event simulator
//!   (`drom-sim`) to replay the full-scale experiments in virtual time.
//!
//! [`config`] holds Table 1 (the MPI × OpenMP configurations of every
//! application), and [`driver`] the generic "malleable iterative application"
//! loop of Listing 1 (init DLB, poll DROM each iteration, adapt, compute).

#![forbid(unsafe_code)]

pub mod config;
pub mod coreneuron;
pub mod driver;
pub mod kernel;
pub mod nest;
pub mod perfmodel;
pub mod pils;
pub mod simulator;
pub mod stream;

pub use config::{AppConfig, AppKind, Table1};
pub use coreneuron::CoreNeuronSim;
pub use driver::{IterationReport, MalleableDriver, RunReport};
pub use nest::NestSim;
pub use perfmodel::{AppModel, PerfModel};
pub use pils::Pils;
pub use simulator::{SimReport, StaticPartitionSim};
pub use stream::Stream;
