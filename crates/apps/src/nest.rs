//! The NEST-like mini-app: a malleable spiking-network simulator rank.
//!
//! NEST 2.12 was made malleable for the paper by adding `DLB_PollDROM` calls at
//! the safe points of its update loop, but "its data is statically partitioned
//! according to the maximum number of computational resources during
//! initialization", which produces the imbalance of Figure 5 when threads are
//! removed. [`NestSim`] wraps [`StaticPartitionSim`] with NEST's configuration
//! defaults.

use drom_metrics::Tracer;
use drom_ompsim::{DromOmptTool, OmpRuntime};

use crate::config::{AppConfig, Table1};
use crate::simulator::{SimReport, StaticPartitionSim};

/// One rank of the NEST-like simulator.
#[derive(Debug, Clone)]
pub struct NestSim {
    /// The Table-1 configuration this rank belongs to.
    pub config: AppConfig,
    engine: StaticPartitionSim,
}

impl NestSim {
    /// Creates a rank for the given configuration (defaults to Conf. 1).
    pub fn new(config: AppConfig) -> Self {
        let engine = StaticPartitionSim::new(config.threads_per_task)
            .with_neurons_per_chunk(512)
            .with_work(4_000)
            .with_iterations(25);
        NestSim { config, engine }
    }

    /// NEST Conf. 1 (2 × 16).
    pub fn conf1() -> Self {
        Self::new(Table1::NEST_CONF1)
    }

    /// NEST Conf. 2 (4 × 8).
    pub fn conf2() -> Self {
        Self::new(Table1::NEST_CONF2)
    }

    /// Scales the run down (or up): iterations and per-sub-chunk work.
    pub fn scaled(mut self, iterations: usize, work_per_subchunk: u64) -> Self {
        self.engine = self
            .engine
            .clone()
            .with_iterations(iterations)
            .with_work(work_per_subchunk);
        self
    }

    /// Switches to the fully malleable variant (the improvement the paper
    /// anticipates: "A fully malleable NEST version that doesn't partition data
    /// according to initial number of threads would improve this result").
    pub fn fully_malleable(mut self) -> Self {
        self.engine = self.engine.clone().fully_malleable();
        self
    }

    /// The underlying engine configuration.
    pub fn engine(&self) -> &StaticPartitionSim {
        &self.engine
    }

    /// Runs this rank on `runtime`, polling DROM through `tool` at every
    /// iteration when provided.
    pub fn run_rank(
        &self,
        runtime: &OmpRuntime,
        tool: Option<&DromOmptTool>,
        tracer: Option<&Tracer>,
        process_index: usize,
    ) -> SimReport {
        self.engine.run_rank(runtime, tool, tracer, process_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppKind;

    #[test]
    fn configurations_match_table1() {
        assert_eq!(NestSim::conf1().config.threads_per_task, 16);
        assert_eq!(NestSim::conf2().config.mpi_tasks, 4);
        assert_eq!(NestSim::conf1().config.kind, AppKind::Nest);
        assert_eq!(NestSim::conf1().engine().chunks, 16);
        assert_eq!(NestSim::conf2().engine().chunks, 8);
    }

    #[test]
    fn scaled_run_executes() {
        let rt = OmpRuntime::new(4);
        // Scale down to a 4-thread pool for the test.
        let sim = NestSim::new(AppConfig::new(AppKind::Nest, 1, 1, 4)).scaled(3, 500);
        let report = sim.run_rank(&rt, None, None, 0);
        assert_eq!(report.iterations_done, 3);
        assert_eq!(report.team_sizes, vec![4, 4, 4]);
    }

    #[test]
    fn fully_malleable_flag_propagates() {
        let sim = NestSim::conf1().fully_malleable();
        assert!(sim.engine().fully_malleable);
    }
}
