//! Table 1 of the paper: the MPI × OpenMP configurations of every application.
//!
//! | Application | Conf. 1 | Conf. 2 | Conf. 3 |
//! |---|---|---|---|
//! | NEST        | 2 × 16 | 4 × 8 | — |
//! | CoreNeuron  | 2 × 16 | 4 × 8 | — |
//! | Pils        | 2 × 16 | 2 × 1 | 2 × 4 |
//! | STREAM      | 2 × 2  | —     | — |
//!
//! All applications ask for two nodes and distribute their MPI processes among
//! them.

use serde::{Deserialize, Serialize};

/// The four evaluation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// The NEST spiking neural-network simulator.
    Nest,
    /// The CoreNeuron simulator.
    CoreNeuron,
    /// The Pils compute-bound synthetic benchmark.
    Pils,
    /// The STREAM memory-bandwidth benchmark.
    Stream,
}

impl AppKind {
    /// Display name used in tables (matches the paper's naming).
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Nest => "NEST",
            AppKind::CoreNeuron => "CoreNeuron",
            AppKind::Pils => "Pils",
            AppKind::Stream => "STREAM",
        }
    }

    /// `true` for the long-running neuro-simulators (the "simulation" role of
    /// use case 1).
    pub fn is_simulator(&self) -> bool {
        matches!(self, AppKind::Nest | AppKind::CoreNeuron)
    }
}

/// One application configuration: how many MPI tasks, how many OpenMP threads
/// per task. The paper always uses two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppConfig {
    /// Which application.
    pub kind: AppKind,
    /// Configuration index (1-based, matching "Conf. 1" … "Conf. 3").
    pub conf: usize,
    /// Number of MPI tasks (total, across the two nodes).
    pub mpi_tasks: usize,
    /// OpenMP/OmpSs threads per MPI task.
    pub threads_per_task: usize,
    /// Number of nodes the job asks for.
    pub nodes: usize,
}

impl AppConfig {
    /// Creates a two-node configuration.
    pub const fn new(
        kind: AppKind,
        conf: usize,
        mpi_tasks: usize,
        threads_per_task: usize,
    ) -> Self {
        AppConfig {
            kind,
            conf,
            mpi_tasks,
            threads_per_task,
            nodes: 2,
        }
    }

    /// Label like `"NEST Conf. 1 (2x16)"`.
    pub fn label(&self) -> String {
        format!(
            "{} Conf. {} ({}x{})",
            self.kind.name(),
            self.conf,
            self.mpi_tasks,
            self.threads_per_task
        )
    }

    /// Short label like `"Conf. 1"`.
    pub fn short_label(&self) -> String {
        format!("Conf. {}", self.conf)
    }

    /// Total CPUs the configuration asks for (tasks × threads).
    pub fn requested_cpus(&self) -> usize {
        self.mpi_tasks * self.threads_per_task
    }

    /// MPI tasks placed on each node (block distribution).
    pub fn tasks_per_node(&self) -> usize {
        self.mpi_tasks.div_ceil(self.nodes)
    }

    /// CPUs requested per node.
    pub fn cpus_per_node(&self) -> usize {
        self.tasks_per_node() * self.threads_per_task
    }
}

/// The complete Table 1.
pub struct Table1;

impl Table1 {
    /// NEST Conf. 1: 2 MPI × 16 OpenMP.
    pub const NEST_CONF1: AppConfig = AppConfig::new(AppKind::Nest, 1, 2, 16);
    /// NEST Conf. 2: 4 MPI × 8 OpenMP.
    pub const NEST_CONF2: AppConfig = AppConfig::new(AppKind::Nest, 2, 4, 8);
    /// CoreNeuron Conf. 1: 2 MPI × 16 OpenMP.
    pub const CORENEURON_CONF1: AppConfig = AppConfig::new(AppKind::CoreNeuron, 1, 2, 16);
    /// CoreNeuron Conf. 2: 4 MPI × 8 OpenMP.
    pub const CORENEURON_CONF2: AppConfig = AppConfig::new(AppKind::CoreNeuron, 2, 4, 8);
    /// Pils Conf. 1: 2 MPI × 16 OmpSs (full nodes, reference case).
    pub const PILS_CONF1: AppConfig = AppConfig::new(AppKind::Pils, 1, 2, 16);
    /// Pils Conf. 2: 2 MPI × 1 OmpSs.
    pub const PILS_CONF2: AppConfig = AppConfig::new(AppKind::Pils, 2, 2, 1);
    /// Pils Conf. 3: 2 MPI × 4 OmpSs.
    pub const PILS_CONF3: AppConfig = AppConfig::new(AppKind::Pils, 3, 2, 4);
    /// STREAM Conf. 1: 2 MPI × 2 OpenMP.
    pub const STREAM_CONF1: AppConfig = AppConfig::new(AppKind::Stream, 1, 2, 2);

    /// Every configuration of Table 1, row by row.
    pub fn all() -> Vec<AppConfig> {
        vec![
            Self::NEST_CONF1,
            Self::NEST_CONF2,
            Self::CORENEURON_CONF1,
            Self::CORENEURON_CONF2,
            Self::PILS_CONF1,
            Self::PILS_CONF2,
            Self::PILS_CONF3,
            Self::STREAM_CONF1,
        ]
    }

    /// The configurations of one application.
    pub fn of(kind: AppKind) -> Vec<AppConfig> {
        Self::all().into_iter().filter(|c| c.kind == kind).collect()
    }

    /// The simulator configurations (NEST and CoreNeuron).
    pub fn simulators() -> Vec<AppConfig> {
        Self::all()
            .into_iter()
            .filter(|c| c.kind.is_simulator())
            .collect()
    }

    /// The analytics configurations (Pils and STREAM) used in use case 1.
    pub fn analytics() -> Vec<AppConfig> {
        Self::all()
            .into_iter()
            .filter(|c| !c.kind.is_simulator())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        assert_eq!(Table1::NEST_CONF1.mpi_tasks, 2);
        assert_eq!(Table1::NEST_CONF1.threads_per_task, 16);
        assert_eq!(Table1::NEST_CONF2.mpi_tasks, 4);
        assert_eq!(Table1::NEST_CONF2.threads_per_task, 8);
        assert_eq!(Table1::PILS_CONF2.threads_per_task, 1);
        assert_eq!(Table1::PILS_CONF3.threads_per_task, 4);
        assert_eq!(Table1::STREAM_CONF1.requested_cpus(), 4);
        assert_eq!(Table1::all().len(), 8);
    }

    #[test]
    fn every_config_uses_two_nodes() {
        for config in Table1::all() {
            assert_eq!(config.nodes, 2, "{}", config.label());
        }
    }

    #[test]
    fn per_node_breakdown() {
        // NEST Conf. 1: one 16-thread task per node -> 16 CPUs per node.
        assert_eq!(Table1::NEST_CONF1.tasks_per_node(), 1);
        assert_eq!(Table1::NEST_CONF1.cpus_per_node(), 16);
        // NEST Conf. 2: two 8-thread tasks per node -> 16 CPUs per node.
        assert_eq!(Table1::NEST_CONF2.tasks_per_node(), 2);
        assert_eq!(Table1::NEST_CONF2.cpus_per_node(), 16);
        // Pils Conf. 2 only asks for one CPU per node.
        assert_eq!(Table1::PILS_CONF2.cpus_per_node(), 1);
        // STREAM asks for two CPUs per node.
        assert_eq!(Table1::STREAM_CONF1.cpus_per_node(), 2);
    }

    #[test]
    fn labels_and_groupings() {
        assert_eq!(Table1::NEST_CONF1.label(), "NEST Conf. 1 (2x16)");
        assert_eq!(Table1::PILS_CONF3.short_label(), "Conf. 3");
        assert_eq!(Table1::of(AppKind::Pils).len(), 3);
        assert_eq!(Table1::simulators().len(), 4);
        assert_eq!(Table1::analytics().len(), 4);
        assert!(AppKind::Nest.is_simulator());
        assert!(!AppKind::Stream.is_simulator());
        assert_eq!(AppKind::CoreNeuron.name(), "CoreNeuron");
    }
}
