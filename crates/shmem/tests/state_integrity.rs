//! Property test: **any registry operation that returns an error leaves the
//! observable node state byte-identical** — entries (current, pending and
//! owned masks, states, counters), CPU ownership, the idle pool, attach
//! counts and statistics. This pins down the all-or-nothing guarantee of
//! failed steals (a `set_pending_mask(steal=true)` that would starve one
//! victim must not shrink any other victim first) and extends it to every
//! fallible operation.
//!
//! The synchronous `set_pending_mask_sync` is deliberately excluded: its
//! timeout error intentionally leaves the accepted update posted (DLB
//! semantics — the administrator may retry or give up, the target still
//! consumes the mask at its next malleability point).

use proptest::prelude::*;

use drom_cpuset::CpuSet;
use drom_shmem::{NodeShmem, ProcessEntry, ShmemStats};

const NODE_CPUS: usize = 16;

/// One fallible registry operation drawn by proptest. Pids are drawn from a
/// small range and masks from arbitrary ranges so that sequences regularly
/// produce both successes and every error variant (conflicts, starving
/// steals, unknown pids, double registrations, out-of-node masks...).
#[derive(Debug, Clone)]
enum Op {
    Register {
        pid: u32,
        lo: usize,
        hi: usize,
    },
    Preregister {
        pid: u32,
        lo: usize,
        hi: usize,
        steal: bool,
    },
    SetMask {
        pid: u32,
        lo: usize,
        hi: usize,
        steal: bool,
    },
    Poll {
        pid: u32,
    },
    Unregister {
        pid: u32,
    },
    MarkFinished {
        pid: u32,
    },
    Lend {
        pid: u32,
        lo: usize,
        hi: usize,
    },
    Borrow {
        pid: u32,
        max: usize,
    },
    Reclaim {
        pid: u32,
    },
    Detach,
}

fn pid_strategy() -> impl Strategy<Value = u32> {
    1u32..7
}

/// `lo..hi` clamped inside 0..=18 so a few masks poke past the node edge and
/// exercise `CpuOutOfNode`; `lo >= hi` yields an empty mask (`EmptyMask`).
fn range_strategy() -> impl Strategy<Value = (usize, usize)> {
    (0usize..18, 0usize..19)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (pid_strategy(), range_strategy()).prop_map(|(pid, (lo, hi))| Op::Register { pid, lo, hi }),
        (pid_strategy(), range_strategy(), (0usize..2)).prop_map(|(pid, (lo, hi), s)| {
            Op::Preregister {
                pid,
                lo,
                hi,
                steal: s == 1,
            }
        }),
        (pid_strategy(), range_strategy(), (0usize..2)).prop_map(|(pid, (lo, hi), s)| {
            Op::SetMask {
                pid,
                lo,
                hi,
                steal: s == 1,
            }
        }),
        pid_strategy().prop_map(|pid| Op::Poll { pid }),
        pid_strategy().prop_map(|pid| Op::Unregister { pid }),
        pid_strategy().prop_map(|pid| Op::MarkFinished { pid }),
        (pid_strategy(), range_strategy()).prop_map(|(pid, (lo, hi))| Op::Lend { pid, lo, hi }),
        (pid_strategy(), 0usize..6).prop_map(|(pid, max)| Op::Borrow { pid, max }),
        pid_strategy().prop_map(|pid| Op::Reclaim { pid }),
        Just(Op::Detach),
    ]
}

fn mask_of(lo: usize, hi: usize) -> CpuSet {
    if lo >= hi {
        CpuSet::new()
    } else {
        CpuSet::from_range(lo..hi).expect("hi <= 18 < MAX_CPUS")
    }
}

/// The full observable state of a node.
#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    entries: Vec<ProcessEntry>,
    pid_list: Vec<u32>,
    idle_pool: CpuSet,
    free_cpus: CpuSet,
    cpu_owners: Vec<Option<u32>>,
    attachments: usize,
    stats: ShmemStats,
}

fn snapshot(shmem: &NodeShmem) -> Snapshot {
    Snapshot {
        entries: shmem.entries(),
        pid_list: shmem.pid_list(),
        idle_pool: shmem.idle_pool(),
        free_cpus: shmem.free_cpus(),
        cpu_owners: (0..NODE_CPUS).map(|cpu| shmem.cpu_owner(cpu)).collect(),
        attachments: shmem.attachments(),
        stats: shmem.stats(),
    }
}

/// Applies `op`; returns `true` if it errored.
fn apply(shmem: &NodeShmem, op: &Op) -> bool {
    match *op {
        Op::Register { pid, lo, hi } => shmem.register(pid, mask_of(lo, hi)).is_err(),
        Op::Preregister { pid, lo, hi, steal } => {
            shmem.preregister(pid, mask_of(lo, hi), steal).is_err()
        }
        Op::SetMask { pid, lo, hi, steal } => {
            shmem.set_pending_mask(pid, mask_of(lo, hi), steal).is_err()
        }
        Op::Poll { pid } => shmem.poll(pid).is_err(),
        Op::Unregister { pid } => shmem.unregister(pid).is_err(),
        Op::MarkFinished { pid } => shmem.mark_finished(pid).is_err(),
        Op::Lend { pid, lo, hi } => shmem.lend_cpus(pid, &mask_of(lo, hi)).is_err(),
        Op::Borrow { pid, max } => shmem.borrow_cpus(pid, max).is_err(),
        Op::Reclaim { pid } => shmem.reclaim_cpus(pid).is_err(),
        Op::Detach => shmem.detach().is_err(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever happened before, an erroring operation is a perfect no-op.
    #[test]
    fn erroring_operations_leave_state_unchanged(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let shmem = NodeShmem::new("prop", NODE_CPUS);
        let mut errors = 0u32;
        for op in &ops {
            let before = snapshot(&shmem);
            let errored = apply(&shmem, op);
            if errored {
                errors += 1;
                let after = snapshot(&shmem);
                prop_assert_eq!(
                    &before, &after,
                    "operation {:?} errored but mutated state", op
                );
            }
        }
        // The op mix must actually exercise failures for this test to mean
        // anything; with unknown pids, double registrations and overlapping
        // masks in the pool this never fires in practice.
        prop_assert!(errors > 0 || ops.len() < 4);
    }

    /// Directed version of the acceptance criterion: a grow-with-steal that
    /// would starve one victim leaves every entry untouched, for arbitrary
    /// splits of the node across three processes.
    #[test]
    fn failed_steal_never_partially_applies(split_a in 2usize..8, split_b in 9usize..15) {
        // Three processes partition the node: [0, split_a), [split_a, split_b),
        // [split_b, 16). Growing pid 3 over everything from CPU 1 on shrinks
        // pid 1 (which survives on CPU 0) and starves pid 2, whatever the
        // splits are — two victims, only one of which is viable.
        let shmem = NodeShmem::new("prop2", NODE_CPUS);
        shmem.register(1, CpuSet::from_range(0..split_a).unwrap()).unwrap();
        shmem.register(2, CpuSet::from_range(split_a..split_b).unwrap()).unwrap();
        shmem.register(3, CpuSet::from_range(split_b..NODE_CPUS).unwrap()).unwrap();
        let before = snapshot(&shmem);

        let grab = CpuSet::from_range(1..NODE_CPUS).unwrap();
        prop_assert!(shmem.set_pending_mask(3, grab, true).is_err());
        prop_assert_eq!(&snapshot(&shmem), &before);

        // The same grab through pre-registration is refused identically.
        prop_assert!(shmem.preregister(9, CpuSet::from_range(1..split_b).unwrap(), true).is_err());
        prop_assert_eq!(&snapshot(&shmem), &before);
    }
}
