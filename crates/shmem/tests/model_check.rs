//! Exhaustive model-check tests for the registry's lock-free stamp protocol.
//!
//! Only compiled and run under the model-check configuration:
//!
//! ```text
//! RUSTFLAGS="--cfg drom_verify" cargo test -p drom-shmem --release --test model_check
//! ```
//!
//! Each protocol property has two kinds of tests: the clean run, which must
//! pass in *every* interleaving the checker explores, and mutation runs,
//! which flip one `drom_shmem::hazards` knob (an ordering weakening or a
//! skipped handshake step) and assert the checker reports a concrete failing
//! interleaving. See `docs/verification.md` for the memory model and what a
//! pass does and does not prove.
#![cfg(drom_verify)]

use drom_cpuset::CpuSet;
use drom_shmem::hazards;
use drom_shmem::{NodeShmem, ShmemError};
use drom_verify::{thread, Builder};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// The hazard knobs are process-global, so every test (clean or mutant)
/// serializes through this lock; dropping the guard resets all knobs.
struct HazardGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn hazard_guard() -> HazardGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    hazards::reset();
    HazardGuard(guard)
}

impl Drop for HazardGuard {
    fn drop(&mut self) {
        hazards::reset();
    }
}

fn cpus(bits: &[usize]) -> CpuSet {
    bits.iter().copied().collect()
}

fn checker() -> Builder {
    Builder::new().preemption_bound(2)
}

/// Runs `scenario` with `knob` enabled and asserts the checker finds a
/// failing interleaving (and renders a non-empty trace for it).
fn assert_mutant_caught(knob: &'static AtomicBool, scenario: fn()) {
    // SAFETY(ordering): test-control flag set before the checker spawns any
    // model thread; never raced with the modeled protocol.
    knob.store(true, std::sync::atomic::Ordering::Relaxed);
    let failure = checker()
        .check(scenario)
        .expect_err("the seeded mutant must produce a failing interleaving");
    assert!(
        !failure.trace.is_empty(),
        "failure must carry a concrete interleaving: {failure}"
    );
    // The rendered report names the schedule step by step.
    let rendered = failure.to_string();
    assert!(rendered.contains("interleaving ("), "{rendered}");
}

// ---------------------------------------------------------------------------
// Property 1: poll vs lend stamp-parity resync.
//
// A partial lend rewrites current and pending masks but must leave the stamp
// parity aligned with "a pending mask exists"; `sync_pending_stamp` bumps
// only on mismatch. A concurrent poller must never lose the update or see a
// stamp that disagrees with the payload.
// ---------------------------------------------------------------------------

fn poll_vs_lend_scenario() {
    let reg = Arc::new(NodeShmem::new("model", 2));
    reg.register(10, cpus(&[0, 1])).unwrap();
    // Pending shrink to {0}; parity goes odd.
    assert!(reg.set_pending_mask(10, cpus(&[0]), false).unwrap().updated);
    let hint = reg.slot_hint(10).unwrap();

    let lender = {
        let reg = reg.clone();
        thread::spawn(move || {
            // Partial lend: pending stays {0} (non-empty), so the parity is
            // already correct and sync_pending_stamp must not bump it.
            reg.lend_cpus(10, &cpus(&[1])).unwrap();
        })
    };
    let poller = {
        let reg = reg.clone();
        thread::spawn(move || {
            let _ = reg.poll_hinted(hint, 10).unwrap();
            let _ = reg.poll_hinted(hint, 10).unwrap();
        })
    };
    lender.join();
    poller.join();

    // Drain: consume anything still pending, then the registry must be
    // parity-consistent with the process on exactly its post-shrink mask.
    let _ = reg.poll_hinted(hint, 10).unwrap();
    assert_eq!(reg.current_mask(10).unwrap(), cpus(&[0]));
    assert!(!reg.has_pending(10).unwrap());
    reg.debug_stamp_consistency().unwrap();
}

#[test]
fn poll_vs_lend_parity_holds() {
    let _g = hazard_guard();
    let report = checker()
        .check(poll_vs_lend_scenario)
        .unwrap_or_else(|f| panic!("{f}"));
    assert!(report.executions > 10, "explored {}", report.executions);
}

#[test]
fn mutant_unconditional_stamp_bump_is_caught() {
    let _g = hazard_guard();
    assert_mutant_caught(&hazards::UNCONDITIONAL_STAMP_BUMP, poll_vs_lend_scenario);
}

// ---------------------------------------------------------------------------
// Property 2: steal publication chain.
//
// `preregister(steal)` posts the victims' pending shrinks (Release stamp
// bumps) *before* publishing the thief's slot (Release store), and lock-free
// scanners read stamps with Acquire. So any observer that sees the thief
// registered must also see the victim's pending shrink — entirely lock-free
// on the observer side. Weakening either side of the Release/Acquire pair
// severs the chain.
// ---------------------------------------------------------------------------

fn steal_publication_scenario() {
    let reg = Arc::new(NodeShmem::new("model", 2));
    reg.register(11, cpus(&[0, 1])).unwrap();

    let thief = {
        let reg = reg.clone();
        thread::spawn(move || {
            let victims = reg.preregister(12, cpus(&[1]), true).unwrap();
            assert_eq!(victims.len(), 1);
            assert_eq!(victims[0].mask, cpus(&[0]));
        })
    };
    let observer = {
        let reg = reg.clone();
        thread::spawn(move || {
            // Lock-free observation only: slot_hint/has_pending scan stamps
            // without touching `inner` (a lock would smuggle in the
            // happens-before edge this property is about).
            if reg.slot_hint(12).is_ok() {
                assert!(
                    reg.has_pending(11).unwrap(),
                    "observed the thief registered but not the victim's pending shrink"
                );
            }
        })
    };
    thief.join();
    observer.join();

    assert_eq!(reg.effective_mask(11).unwrap(), cpus(&[0]));
    assert_eq!(reg.effective_mask(12).unwrap(), cpus(&[1]));
    reg.debug_stamp_consistency().unwrap();
}

#[test]
fn steal_publication_chain_holds() {
    let _g = hazard_guard();
    let report = checker()
        .check(steal_publication_scenario)
        .unwrap_or_else(|f| panic!("{f}"));
    assert!(report.executions > 10, "explored {}", report.executions);
}

#[test]
fn mutant_publish_stamp_relaxed_is_caught() {
    let _g = hazard_guard();
    assert_mutant_caught(&hazards::PUBLISH_STAMP_RELAXED, steal_publication_scenario);
}

#[test]
fn mutant_find_slot_relaxed_is_caught() {
    let _g = hazard_guard();
    assert_mutant_caught(&hazards::FIND_SLOT_RELAXED, steal_publication_scenario);
}

// ---------------------------------------------------------------------------
// Property 3: the set_pending_mask_sync missed-wakeup window.
//
// The synchronous setter checks the (lock-free) pending bit under `inner`
// and then waits on `consumed`; the consumer clears the stamp, passes
// through `inner`, and only then signals. Skipping that pass lets the signal
// fire in the window between the setter's check and its wait — a lost
// wakeup the checker reports as a deadlock.
// ---------------------------------------------------------------------------

fn sync_setter_scenario() {
    let reg = Arc::new(NodeShmem::new("model", 2));
    reg.register(10, cpus(&[0])).unwrap();
    let hint = reg.slot_hint(10).unwrap();

    let setter = {
        let reg = reg.clone();
        thread::spawn(move || {
            let outcome = reg
                .set_pending_mask_sync(10, cpus(&[0, 1]), false, Duration::from_secs(3600))
                .unwrap();
            assert!(outcome.updated);
        })
    };
    let consumer = {
        let reg = reg.clone();
        thread::spawn(move || {
            let mut spins = 0;
            loop {
                if reg.poll_hinted(hint, 10).unwrap().is_some() {
                    break;
                }
                thread::yield_now();
                spins += 1;
                assert!(spins < 100, "consumer spin did not converge");
            }
        })
    };
    setter.join();
    consumer.join();

    assert_eq!(reg.current_mask(10).unwrap(), cpus(&[0, 1]));
    assert!(!reg.has_pending(10).unwrap());
    reg.debug_stamp_consistency().unwrap();
}

#[test]
fn sync_setter_never_misses_the_wakeup() {
    let _g = hazard_guard();
    let report = checker()
        .check(sync_setter_scenario)
        .unwrap_or_else(|f| panic!("{f}"));
    assert!(report.executions > 10, "explored {}", report.executions);
}

#[test]
fn mutant_skip_consume_handshake_is_caught() {
    let _g = hazard_guard();
    // SAFETY(ordering): test-control flag, set before the check starts.
    hazards::SKIP_CONSUME_HANDSHAKE.store(true, std::sync::atomic::Ordering::Relaxed);
    let failure = checker()
        .check(sync_setter_scenario)
        .expect_err("skipping the inner pass must lose a wakeup in some interleaving");
    assert!(
        failure.cause.contains("deadlock"),
        "a missed wakeup shows up as a deadlock: {failure}"
    );
    assert!(!failure.trace.is_empty());
}

// ---------------------------------------------------------------------------
// Property 4a: the cancel-vs-post steal decision is re-made under the slot
// lock.
//
// Phase 1 of a steal may plan to cancel the victim's pending update (the
// composed mask equals its current one), but a poll racing between the
// phases consumes that pending mask; deciding on the stale snapshot would
// drop the victim's shrink entirely and leave the thief and victim sharing
// CPUs.
// ---------------------------------------------------------------------------

fn cancel_vs_post_scenario() {
    let reg = Arc::new(NodeShmem::new("model", 2));
    reg.register(11, cpus(&[0])).unwrap();
    // Pending grow to {0,1}: stealing CPU 1 composes back to exactly {0},
    // the cancel case — unless a racing poll consumes the grow first.
    assert!(
        reg.set_pending_mask(11, cpus(&[0, 1]), false)
            .unwrap()
            .updated
    );
    let hint = reg.slot_hint(11).unwrap();

    let thief = {
        let reg = reg.clone();
        thread::spawn(move || {
            reg.preregister(12, cpus(&[1]), true).unwrap();
        })
    };
    let poller = {
        let reg = reg.clone();
        thread::spawn(move || {
            let _ = reg.poll_hinted(hint, 11).unwrap();
        })
    };
    thief.join();
    poller.join();

    // Drain 11's queue, then the masks must have converged: the victim on
    // {0}, the thief on {1}, disjoint.
    for _ in 0..3 {
        if reg.poll_hinted(hint, 11).unwrap().is_none() {
            break;
        }
    }
    let victim = reg.effective_mask(11).unwrap();
    let thief_mask = reg.effective_mask(12).unwrap();
    assert_eq!(victim, cpus(&[0]));
    assert_eq!(thief_mask, cpus(&[1]));
    assert!(
        victim.intersection(&thief_mask).is_empty(),
        "victim and thief share CPUs: {victim:?} vs {thief_mask:?}"
    );
    reg.debug_stamp_consistency().unwrap();
}

#[test]
fn cancel_vs_post_decision_holds() {
    let _g = hazard_guard();
    let report = checker()
        .check(cancel_vs_post_scenario)
        .unwrap_or_else(|f| panic!("{f}"));
    assert!(report.executions > 10, "explored {}", report.executions);
}

#[test]
fn mutant_stale_steal_decision_is_caught() {
    let _g = hazard_guard();
    assert_mutant_caught(&hazards::STALE_STEAL_DECISION, cancel_vs_post_scenario);
}

// ---------------------------------------------------------------------------
// Property 4b: a failed steal is all-or-nothing.
//
// Phase 1 validates every victim before phase 2 mutates any; a steal that
// would leave some victim empty-masked fails with the registry untouched,
// even with a poller racing the attempt.
// ---------------------------------------------------------------------------

fn all_or_nothing_scenario() {
    let reg = Arc::new(NodeShmem::new("model", 3));
    reg.register(10, cpus(&[0, 1])).unwrap();
    reg.register(11, cpus(&[2])).unwrap();
    let hint = reg.slot_hint(10).unwrap();

    let thief = {
        let reg = reg.clone();
        thread::spawn(move || {
            // Stealing {1,2} would empty pid 11 ({2} is its whole mask):
            // the attempt must fail and must not have shrunk pid 10.
            match reg.preregister(12, cpus(&[1, 2]), true) {
                Err(ShmemError::EmptyMask { pid: 11 }) => {}
                other => panic!("expected EmptyMask for pid 11, got {other:?}"),
            }
        })
    };
    let poller = {
        let reg = reg.clone();
        thread::spawn(move || {
            // Nothing may ever be posted to pid 10 by the failed steal.
            assert_eq!(reg.poll_hinted(hint, 10).unwrap(), None);
        })
    };
    thief.join();
    poller.join();

    assert_eq!(reg.effective_mask(10).unwrap(), cpus(&[0, 1]));
    assert_eq!(reg.effective_mask(11).unwrap(), cpus(&[2]));
    assert!(!reg.has_pending(10).unwrap());
    assert!(
        reg.slot_hint(12).is_err(),
        "failed preregister left pid 12 behind"
    );
    reg.debug_stamp_consistency().unwrap();
}

#[test]
fn failed_steal_is_all_or_nothing() {
    let _g = hazard_guard();
    let report = checker()
        .check(all_or_nothing_scenario)
        .unwrap_or_else(|f| panic!("{f}"));
    assert!(report.executions > 10, "explored {}", report.executions);
}

#[test]
fn mutant_eager_steal_apply_is_caught() {
    let _g = hazard_guard();
    assert_mutant_caught(&hazards::EAGER_STEAL_APPLY, all_or_nothing_scenario);
}
