//! Concurrency stress tests for the lock-free poll fast path: many pollers
//! racing synchronous administrator updates and steals must never deadlock,
//! lose an update, or leave the node oversubscribed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use drom_cpuset::CpuSet;
use drom_shmem::{NodeShmem, ShmemError};

/// Drains every pending update and asserts the node-wide invariants: current
/// masks of live processes are disjoint, non-empty and inside the node.
fn drain_and_check(shmem: &NodeShmem, pids: &[u32]) {
    let mut seen = CpuSet::new();
    for &pid in pids {
        while shmem.poll(pid).unwrap().is_some() {}
        let mask = shmem.current_mask(pid).unwrap();
        assert!(!mask.is_empty(), "process {pid} was starved");
        assert!(
            seen.is_disjoint(&mask),
            "oversubscription: {mask} of pid {pid} overlaps {seen}"
        );
        seen = seen.union(&mask);
        assert!(mask.last().unwrap() < shmem.node_cpus());
    }
}

/// Four pollers hammer their own slots while an administrator alternates
/// synchronous shrink/grow-with-steal updates across all of them.
#[test]
fn pollers_race_synchronous_steals() {
    let shmem = Arc::new(NodeShmem::new("stress", 16));
    let pids: Vec<u32> = (1..=4).collect();
    for (i, &pid) in pids.iter().enumerate() {
        shmem
            .register(pid, CpuSet::from_range(i * 4..(i + 1) * 4).unwrap())
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let pollers: Vec<_> = pids
        .iter()
        .map(|&pid| {
            let shmem = Arc::clone(&shmem);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut polls = 0u64;
                // SAFETY(ordering): stop flag; the join synchronizes.
                while !stop.load(Ordering::Relaxed) {
                    shmem.poll(pid).unwrap();
                    polls += 1;
                }
                polls
            })
        })
        .collect();

    // The administrator cycles through the processes, alternately shrinking a
    // target to its first CPU's neighbourhood and growing it back with steal.
    // Every accepted synchronous update must be consumed by the racing
    // pollers within the timeout.
    let mut accepted = 0u64;
    for round in 0..200u32 {
        let target = pids[(round as usize) % pids.len()];
        let anchor = shmem.current_mask(target).unwrap().first().unwrap();
        let width = if round % 2 == 0 { 2 } else { 4 };
        let wanted: CpuSet = (anchor..16).take(width).collect();
        match shmem.set_pending_mask_sync(target, wanted, true, Duration::from_secs(5)) {
            Ok(outcome) => {
                if outcome.updated {
                    accepted += 1;
                }
            }
            // Starving a victim or colliding with an unconsumed victim shrink
            // is a legitimate rejection; a timeout with live pollers is not.
            Err(ShmemError::EmptyMask { .. }) | Err(ShmemError::PendingMaskNotConsumed { .. }) => {}
            Err(err) => panic!("unexpected administrator error: {err}"),
        }
    }

    // SAFETY(ordering): stop flag; the joins below synchronize.
    stop.store(true, Ordering::Relaxed);
    let total_polls: u64 = pollers.into_iter().map(|p| p.join().unwrap()).sum();
    assert!(accepted > 0, "no synchronous update was ever accepted");
    assert!(total_polls > 0);

    drain_and_check(&shmem, &pids);
    let stats = shmem.stats();
    assert!(stats.polls >= total_polls);
    assert!(stats.poll_updates <= stats.polls);
    assert!(
        stats.poll_updates >= accepted,
        "an accepted sync update was lost"
    );
}

/// Two administrators race synchronous updates against the same target while
/// it is being polled: exactly one wins each round (the other observes
/// `PendingMaskNotConsumed` or succeeds after), and nothing deadlocks.
#[test]
fn competing_synchronous_setters_on_one_target() {
    let shmem = Arc::new(NodeShmem::new("stress2", 16));
    shmem
        .register(1, CpuSet::from_range(0..8).unwrap())
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let shmem = Arc::clone(&shmem);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // SAFETY(ordering): stop flag; the join synchronizes.
            while !stop.load(Ordering::Relaxed) {
                shmem.poll(1).unwrap();
            }
        })
    };

    let setters: Vec<_> = [2usize, 4]
        .into_iter()
        .map(|width| {
            let shmem = Arc::clone(&shmem);
            std::thread::spawn(move || {
                let mut wins = 0u32;
                for _ in 0..100 {
                    let wanted = CpuSet::from_range(0..width).unwrap();
                    match shmem.set_pending_mask_sync(1, wanted, false, Duration::from_secs(5)) {
                        Ok(_) => wins += 1,
                        Err(ShmemError::PendingMaskNotConsumed { .. }) => {}
                        Err(err) => panic!("unexpected error: {err}"),
                    }
                }
                wins
            })
        })
        .collect();

    let wins: u32 = setters.into_iter().map(|s| s.join().unwrap()).sum();
    // SAFETY(ordering): stop flag; the joins below synchronize.
    stop.store(true, Ordering::Relaxed);
    poller.join().unwrap();

    assert!(wins > 0, "no setter ever won");
    drain_and_check(&shmem, &[1]);
    let width = shmem.current_mask(1).unwrap().count();
    assert!(
        width == 2 || width == 4,
        "final mask must be one of the requests"
    );
}

/// The hinted fast path stays correct when updates land mid-stream: every
/// posted mask is either observed by a poll or superseded by the next update.
#[test]
fn hinted_polls_never_miss_updates() {
    let shmem = Arc::new(NodeShmem::new("stress3", 16));
    shmem
        .register(7, CpuSet::from_range(0..8).unwrap())
        .unwrap();
    let hint = shmem.slot_hint(7).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let shmem = Arc::clone(&shmem);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut applied = 0u64;
            // SAFETY(ordering): stop flag; the join synchronizes.
            while !stop.load(Ordering::Relaxed) {
                if shmem.poll_hinted(hint, 7).unwrap().is_some() {
                    applied += 1;
                }
            }
            applied
        })
    };

    let mut posted = 0u64;
    for round in 0..500u32 {
        let width = 4 + (round % 4) as usize;
        match shmem.set_pending_mask_sync(
            7,
            CpuSet::from_range(0..width).unwrap(),
            false,
            Duration::from_secs(5),
        ) {
            Ok(outcome) if outcome.updated => posted += 1,
            Ok(_) => {}
            Err(err) => panic!("unexpected error: {err}"),
        }
    }

    // SAFETY(ordering): stop flag; the joins below synchronize.
    stop.store(true, Ordering::Relaxed);
    let applied = poller.join().unwrap();
    // Synchronous posting means every accepted update was consumed before the
    // next one was posted: nothing can be lost or coalesced.
    assert_eq!(applied, posted);
    assert!(!shmem.has_pending_hinted(hint, 7).unwrap());
}

/// Regression stress for the steal/poll race: an administrator repeatedly
/// grants CPU 8 to pid 1 and immediately revokes it by pre-registering a new
/// process there, while pid 1 polls in a tight loop. A poll landing between
/// the steal's validate and apply phases must downgrade the planned
/// cancellation into a posted shrink — never drop it — so the two processes'
/// masks stay disjoint.
#[test]
fn steal_racing_poll_never_oversubscribes() {
    let shmem = Arc::new(NodeShmem::new("stress4", 16));
    shmem
        .register(1, CpuSet::from_range(0..8).unwrap())
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let shmem = Arc::clone(&shmem);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // SAFETY(ordering): stop flag; the join synchronizes.
            while !stop.load(Ordering::Relaxed) {
                shmem.poll(1).unwrap();
            }
        })
    };

    for round in 0..300u32 {
        // Grant CPU 8 to pid 1 (async, so the racing poller may or may not
        // have consumed it by the time the steal runs)...
        match shmem.set_pending_mask(1, CpuSet::from_range(0..9).unwrap(), false) {
            Ok(_) | Err(ShmemError::PendingMaskNotConsumed { .. }) => {}
            Err(err) => panic!("unexpected grant error: {err}"),
        }
        // ...then immediately revoke it for a short-lived neighbour.
        let pid = 100 + round;
        shmem
            .preregister(pid, CpuSet::from_cpus([8]).unwrap(), true)
            .unwrap();
        // While the neighbour exists, pid 1 must never hold CPU 8 once its
        // pending updates drain.
        while shmem.has_pending(1).unwrap() {
            std::thread::yield_now();
        }
        let mask = shmem.current_mask(1).unwrap();
        assert!(
            !mask.is_set(8),
            "round {round}: pid 1 still holds stolen CPU 8 ({mask})"
        );
        shmem.unregister(pid).unwrap();
        // Drain the ownership-return grow posted by the unregister.
        while shmem.has_pending(1).unwrap() {
            std::thread::yield_now();
        }
    }

    // SAFETY(ordering): stop flag; the joins below synchronize.
    stop.store(true, Ordering::Relaxed);
    poller.join().unwrap();
}
