//! Per-node shared-memory process registry — the DLB "shmem" analogue.
//!
//! The original DLB library keeps one POSIX shared-memory segment per node: a
//! lock-protected region where every DLB-attached process registers itself, its
//! CPU mask and its pending (administrator-requested) mask. Administrator
//! processes (SLURM's `slurmd`/`slurmstepd`, or a user tool) attach to the same
//! segment to query and modify those masks; the applications observe the
//! changes at their next malleability point (a `DLB_PollDROM` call or an OMPT
//! callback).
//!
//! This crate reproduces that registry protocol in-process: a [`NodeShmem`] is
//! the segment of one node, and a [`ShmemManager`] hands out the per-node
//! segments of a simulated cluster. Everything that is *semantically* part of
//! the shared memory — entry life-cycle, pending-mask handshake, CPU ownership,
//! attach accounting, the asynchronous subscription channel — is implemented;
//! only the `shm_open`/`mmap` transport is replaced by an in-process slot
//! table, which does not change any API-visible behaviour (see `DESIGN.md`).
//!
//! Like the original fixed-size `shmem_procinfo` array, the registry stores
//! one slot per process with a packed atomic stamp word, so the steady-state
//! receiver path — a `poll` that finds no pending update, or
//! [`NodeShmem::has_pending`] — is a single relaxed atomic load that never
//! takes the registry lock (see [`registry`] for the hand-off protocol).
//!
//! # Example
//!
//! ```
//! use drom_shmem::{NodeShmem, ProcessState};
//! use drom_cpuset::CpuSet;
//!
//! let shmem = NodeShmem::new("node1", 16);
//! // An application registers with its initial mask (CPUs 0-15).
//! shmem.register(100, CpuSet::first_n(16)).unwrap();
//! // An administrator shrinks it to CPUs 0-7.
//! shmem.set_pending_mask(100, CpuSet::from_range(0..8).unwrap(), false).unwrap();
//! // The application observes the change at its next poll.
//! let new_mask = shmem.poll(100).unwrap().expect("a pending mask");
//! assert_eq!(new_mask.count(), 8);
//! assert_eq!(shmem.process_state(100).unwrap(), ProcessState::Active);
//! ```

#![forbid(unsafe_code)]

pub mod error;
#[cfg(drom_verify)]
pub mod hazards;
pub mod node;
pub mod registry;
pub mod stats;
pub mod sync;

pub use error::ShmemError;
pub use node::ShmemManager;
pub use registry::{MaskUpdate, NodeShmem, Pid, ProcessEntry, ProcessState, SlotHint};
pub use stats::ShmemStats;
