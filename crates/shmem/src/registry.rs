//! The per-node process registry: entries, pending-mask handshake, CPU
//! ownership, the LeWI idle pool and asynchronous subscriptions.

use std::collections::HashMap;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use drom_cpuset::CpuSet;

use crate::error::ShmemError;
use crate::stats::ShmemStats;

/// Process identifier. In the reproduction pids are synthetic (handed out by
/// the launcher or by tests), but they play exactly the role of OS pids in the
/// original implementation.
pub type Pid = u32;

/// Life-cycle state of a registered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessState {
    /// Reserved by an administrator through `DROM_PreInit`; the process itself
    /// has not called `DLB_Init` yet.
    PreRegistered,
    /// The process called `DLB_Init` and participates in polling.
    Active,
    /// The process finished; the entry is kept only until `DROM_PostFinalize`.
    Finished,
}

/// One process registered in the node shared memory.
#[derive(Debug, Clone)]
pub struct ProcessEntry {
    /// Process identifier.
    pub pid: Pid,
    /// Life-cycle state.
    pub state: ProcessState,
    /// The mask the process is currently running with.
    pub current_mask: CpuSet,
    /// A mask posted by an administrator that the process has not applied yet.
    pub pending_mask: Option<CpuSet>,
    /// CPUs this process was the original owner of (used to return stolen CPUs
    /// when another process finishes).
    pub owned_cpus: CpuSet,
    /// Registration order (monotonically increasing per node).
    pub registration_seq: u64,
    /// Number of polls performed by this process.
    pub polls: u64,
    /// Number of mask updates this process has applied.
    pub mask_updates: u64,
}

impl ProcessEntry {
    /// The mask the process will be running with once it consumes any pending
    /// update: `pending_mask` if present, `current_mask` otherwise.
    pub fn effective_mask(&self) -> &CpuSet {
        self.pending_mask.as_ref().unwrap_or(&self.current_mask)
    }
}

/// Notification describing a mask change posted to a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskUpdate {
    /// The process whose mask changed.
    pub pid: Pid,
    /// The new mask.
    pub mask: CpuSet,
}

/// Result of an administrator mask update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetMaskOutcome {
    /// `true` if the target's mask actually changed (a pending mask was
    /// posted); `false` when the requested mask equals the effective one.
    pub updated: bool,
    /// Pending updates posted to *other* processes whose CPUs were stolen.
    pub victims: Vec<MaskUpdate>,
}

struct Inner {
    entries: HashMap<Pid, ProcessEntry>,
    /// Original owner of each CPU: the first process that registered with it.
    cpu_owner: HashMap<usize, Pid>,
    /// CPUs lent to the node-wide idle pool (LeWI).
    idle_pool: CpuSet,
    /// Number of administrators currently attached.
    admin_attachments: usize,
    /// Asynchronous-mode subscribers, per pid.
    subscribers: HashMap<Pid, Sender<MaskUpdate>>,
    stats: ShmemStats,
    next_seq: u64,
}

/// The shared-memory segment of one compute node.
///
/// All methods take `&self`; the registry is internally synchronised exactly
/// like the lock-protected shared memory of the original DLB.
pub struct NodeShmem {
    name: String,
    node_cpus: usize,
    inner: Mutex<Inner>,
    /// Signalled whenever a process consumes a pending mask (used by the
    /// synchronous flavour of `set_pending_mask`).
    consumed: Condvar,
}

impl NodeShmem {
    /// Creates the shared-memory segment for a node with `node_cpus` CPUs.
    pub fn new(name: impl Into<String>, node_cpus: usize) -> Self {
        NodeShmem {
            name: name.into(),
            node_cpus,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                cpu_owner: HashMap::new(),
                idle_pool: CpuSet::new(),
                admin_attachments: 0,
                subscribers: HashMap::new(),
                stats: ShmemStats::default(),
                next_seq: 0,
            }),
            consumed: Condvar::new(),
        }
    }

    /// Node name this segment belongs to.
    pub fn node_name(&self) -> &str {
        &self.name
    }

    /// Number of CPUs of the node.
    pub fn node_cpus(&self) -> usize {
        self.node_cpus
    }

    fn validate_mask(&self, pid: Pid, mask: &CpuSet, allow_empty: bool) -> Result<(), ShmemError> {
        if !allow_empty && mask.is_empty() {
            return Err(ShmemError::EmptyMask { pid });
        }
        if let Some(cpu) = mask.last() {
            if cpu >= self.node_cpus {
                return Err(ShmemError::CpuOutOfNode {
                    cpu,
                    node_cpus: self.node_cpus,
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Administrator attach/detach
    // ------------------------------------------------------------------

    /// Attaches an administrator to this segment (`DROM_Attach`).
    pub fn attach(&self) {
        self.inner.lock().admin_attachments += 1;
    }

    /// Detaches an administrator (`DROM_Detach`).
    ///
    /// # Errors
    ///
    /// Returns [`ShmemError::NotAttached`] if no administrator is attached.
    pub fn detach(&self) -> Result<(), ShmemError> {
        let mut inner = self.inner.lock();
        if inner.admin_attachments == 0 {
            return Err(ShmemError::NotAttached);
        }
        inner.admin_attachments -= 1;
        Ok(())
    }

    /// Number of administrators currently attached.
    pub fn attachments(&self) -> usize {
        self.inner.lock().admin_attachments
    }

    // ------------------------------------------------------------------
    // Process registration life-cycle
    // ------------------------------------------------------------------

    /// Registers a process with its initial mask (`DLB_Init`).
    ///
    /// If the pid was pre-registered by an administrator the entry becomes
    /// active and keeps the pre-registered mask (the `mask` argument is only
    /// used when it was not pre-registered).
    ///
    /// # Errors
    ///
    /// * [`ShmemError::AlreadyRegistered`] if the pid is already active.
    /// * [`ShmemError::CpuConflict`] if the mask overlaps another process's
    ///   effective mask.
    /// * [`ShmemError::CpuOutOfNode`] / [`ShmemError::EmptyMask`] on invalid
    ///   masks.
    pub fn register(&self, pid: Pid, mask: CpuSet) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.entries.get(&pid) {
            match entry.state {
                ProcessState::PreRegistered => {
                    // The child of a pre-initialized launch: adopt the
                    // pre-registered mask and become active.
                    let adopted = entry.current_mask.clone();
                    let entry = inner.entries.get_mut(&pid).expect("checked above");
                    entry.state = ProcessState::Active;
                    inner.stats.registers += 1;
                    return Ok(adopted);
                }
                ProcessState::Active | ProcessState::Finished => {
                    return Err(ShmemError::AlreadyRegistered { pid });
                }
            }
        }
        self.validate_mask(pid, &mask, false)?;
        Self::check_conflicts(&inner, pid, &mask)?;
        Self::insert_entry(&mut inner, pid, mask.clone(), ProcessState::Active);
        inner.stats.registers += 1;
        Ok(mask)
    }

    /// Pre-registers a process on behalf of an administrator (`DROM_PreInit`).
    ///
    /// If `steal` is `true`, CPUs of `mask` that other processes currently hold
    /// are removed from those processes (a pending shrink is posted to each
    /// victim and returned). If `steal` is `false` a conflict is an error.
    pub fn preregister(
        &self,
        pid: Pid,
        mask: CpuSet,
        steal: bool,
    ) -> Result<Vec<MaskUpdate>, ShmemError> {
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(&pid) {
            return Err(ShmemError::AlreadyRegistered { pid });
        }
        self.validate_mask(pid, &mask, false)?;
        let victims = if steal {
            Self::steal_cpus(&mut inner, pid, &mask)?
        } else {
            Self::check_conflicts(&inner, pid, &mask)?;
            Vec::new()
        };
        Self::insert_entry(&mut inner, pid, mask, ProcessState::PreRegistered);
        inner.stats.preregisters += 1;
        if steal && !victims.is_empty() {
            inner.stats.steals += 1;
        }
        for update in &victims {
            Self::notify(&inner, update);
        }
        Ok(victims)
    }

    /// Marks a process as finished without removing it (used when the
    /// application exits before the administrator calls `DROM_PostFinalize`).
    pub fn mark_finished(&self, pid: Pid) -> Result<(), ShmemError> {
        let mut inner = self.inner.lock();
        let entry = inner
            .entries
            .get_mut(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        entry.state = ProcessState::Finished;
        Ok(())
    }

    /// Removes a process from the registry (`DLB_Finalize` /
    /// `DROM_PostFinalize`) and returns the CPUs it released, grouped by the
    /// process that originally owned them and is still registered.
    ///
    /// The returned updates are pending expansions posted to those owners, so
    /// they will re-acquire their CPUs at their next malleability point — this
    /// is the "return CPUs to the job that is initial owner" behaviour of
    /// `DROM_PostFinalize`.
    pub fn unregister(&self, pid: Pid) -> Result<Vec<MaskUpdate>, ShmemError> {
        let mut inner = self.inner.lock();
        let entry = inner
            .entries
            .remove(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        inner.stats.unregisters += 1;
        inner.subscribers.remove(&pid);

        let released = entry.effective_mask().clone();
        // Drop ownership of CPUs this process owned.
        inner.cpu_owner.retain(|_, owner| *owner != pid);
        // Remove any of its CPUs from the idle pool bookkeeping.
        inner.idle_pool = inner.idle_pool.difference(&entry.owned_cpus);

        // Return released CPUs to their original owners, if still registered.
        let mut per_owner: HashMap<Pid, CpuSet> = HashMap::new();
        for cpu in released.iter() {
            if let Some(owner) = inner.cpu_owner.get(&cpu).copied() {
                if owner != pid && inner.entries.contains_key(&owner) {
                    per_owner.entry(owner).or_default().set(cpu).ok();
                }
            }
        }
        let mut updates = Vec::new();
        for (owner, cpus) in per_owner {
            let owner_entry = inner.entries.get_mut(&owner).expect("checked above");
            let new_mask = owner_entry.effective_mask().union(&cpus);
            if &new_mask != owner_entry.effective_mask() {
                owner_entry.pending_mask = Some(new_mask.clone());
                let update = MaskUpdate {
                    pid: owner,
                    mask: new_mask,
                };
                Self::notify(&inner, &update);
                updates.push(update);
            }
        }
        Ok(updates)
    }

    fn insert_entry(inner: &mut Inner, pid: Pid, mask: CpuSet, state: ProcessState) {
        for cpu in mask.iter() {
            inner.cpu_owner.entry(cpu).or_insert(pid);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let owned: CpuSet = mask
            .iter()
            .filter(|cpu| inner.cpu_owner.get(cpu) == Some(&pid))
            .collect();
        inner.entries.insert(
            pid,
            ProcessEntry {
                pid,
                state,
                current_mask: mask,
                pending_mask: None,
                owned_cpus: owned,
                registration_seq: seq,
                polls: 0,
                mask_updates: 0,
            },
        );
    }

    fn check_conflicts(inner: &Inner, pid: Pid, mask: &CpuSet) -> Result<(), ShmemError> {
        for entry in inner.entries.values() {
            if entry.pid == pid || entry.state == ProcessState::Finished {
                continue;
            }
            let overlap = entry.effective_mask().intersection(mask);
            if let Some(cpu) = overlap.first() {
                return Err(ShmemError::CpuConflict {
                    cpu,
                    owner: entry.pid,
                });
            }
        }
        Ok(())
    }

    /// Shrinks every process that holds CPUs of `mask`, posting pending updates.
    fn steal_cpus(
        inner: &mut Inner,
        beneficiary: Pid,
        mask: &CpuSet,
    ) -> Result<Vec<MaskUpdate>, ShmemError> {
        let mut updates = Vec::new();
        let victim_pids: Vec<Pid> = inner
            .entries
            .values()
            .filter(|e| e.pid != beneficiary && e.state != ProcessState::Finished)
            .map(|e| e.pid)
            .collect();
        for vpid in victim_pids {
            let entry = inner.entries.get_mut(&vpid).expect("pid listed above");
            let overlap = entry.effective_mask().intersection(mask);
            if overlap.is_empty() {
                continue;
            }
            let shrunk = entry.effective_mask().difference(&overlap);
            if shrunk.is_empty() {
                // Never leave a victim with zero CPUs: that would stall it
                // forever. The original implementation refuses as well.
                return Err(ShmemError::EmptyMask { pid: vpid });
            }
            entry.pending_mask = Some(shrunk.clone());
            updates.push(MaskUpdate {
                pid: vpid,
                mask: shrunk,
            });
        }
        Ok(updates)
    }

    fn notify(inner: &Inner, update: &MaskUpdate) {
        if let Some(tx) = inner.subscribers.get(&update.pid) {
            // A dropped receiver just means the process stopped listening.
            let _ = tx.send(update.clone());
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Lists the pids registered in this node (pre-registered and active).
    pub fn pid_list(&self) -> Vec<Pid> {
        let inner = self.inner.lock();
        let mut pids: Vec<Pid> = inner
            .entries
            .values()
            .filter(|e| e.state != ProcessState::Finished)
            .map(|e| e.pid)
            .collect();
        pids.sort_unstable();
        pids
    }

    /// Returns a snapshot of a process entry.
    pub fn entry(&self, pid: Pid) -> Result<ProcessEntry, ShmemError> {
        self.inner
            .lock()
            .entries
            .get(&pid)
            .cloned()
            .ok_or(ShmemError::ProcessNotFound { pid })
    }

    /// The mask the process is currently running with.
    pub fn current_mask(&self, pid: Pid) -> Result<CpuSet, ShmemError> {
        Ok(self.entry(pid)?.current_mask)
    }

    /// The mask the process will run with after applying any pending update.
    pub fn effective_mask(&self, pid: Pid) -> Result<CpuSet, ShmemError> {
        Ok(self.entry(pid)?.effective_mask().clone())
    }

    /// Life-cycle state of a process.
    pub fn process_state(&self, pid: Pid) -> Result<ProcessState, ShmemError> {
        Ok(self.entry(pid)?.state)
    }

    /// `true` if the process has a pending mask it has not consumed yet.
    pub fn has_pending(&self, pid: Pid) -> Result<bool, ShmemError> {
        Ok(self.entry(pid)?.pending_mask.is_some())
    }

    /// CPUs of the node not effectively assigned to any registered process and
    /// not lent to the idle pool.
    pub fn free_cpus(&self) -> CpuSet {
        let inner = self.inner.lock();
        let mut used = inner.idle_pool.clone();
        for entry in inner.entries.values() {
            if entry.state != ProcessState::Finished {
                used = used.union(entry.effective_mask());
            }
        }
        CpuSet::first_n(self.node_cpus).difference(&used)
    }

    /// Snapshot of the per-node statistics.
    pub fn stats(&self) -> ShmemStats {
        self.inner.lock().stats.clone()
    }

    /// Original owner of a CPU, if any process registered it.
    pub fn cpu_owner(&self, cpu: usize) -> Option<Pid> {
        self.inner.lock().cpu_owner.get(&cpu).copied()
    }

    // ------------------------------------------------------------------
    // Administrator mask updates and process polling
    // ------------------------------------------------------------------

    /// Posts a new mask for `pid` (`DROM_SetProcessMask`).
    ///
    /// The update is *pending*: the target applies it at its next poll. When
    /// `steal` is set, CPUs held by other processes are removed from them
    /// (pending shrinks are posted and returned in
    /// [`SetMaskOutcome::victims`]); otherwise a conflict is an error.
    ///
    /// # Errors
    ///
    /// * [`ShmemError::ProcessNotFound`] for unknown pids.
    /// * [`ShmemError::PendingMaskNotConsumed`] if a previous update is still
    ///   pending.
    /// * [`ShmemError::CpuConflict`] when not stealing and CPUs are taken.
    pub fn set_pending_mask(
        &self,
        pid: Pid,
        mask: CpuSet,
        steal: bool,
    ) -> Result<SetMaskOutcome, ShmemError> {
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(&pid) {
            return Err(ShmemError::ProcessNotFound { pid });
        }
        self.validate_mask(pid, &mask, false)?;
        {
            let entry = inner.entries.get(&pid).expect("checked above");
            if entry.pending_mask.is_some() {
                return Err(ShmemError::PendingMaskNotConsumed { pid });
            }
            if entry.current_mask == mask {
                return Ok(SetMaskOutcome {
                    updated: false,
                    victims: Vec::new(),
                });
            }
        }
        // Conflicts only matter for CPUs we are adding.
        let additions = {
            let entry = inner.entries.get(&pid).expect("checked above");
            mask.difference(&entry.current_mask)
        };
        let victims = if steal {
            Self::steal_cpus(&mut inner, pid, &additions)?
        } else {
            Self::check_conflicts(&inner, pid, &additions)?;
            Vec::new()
        };
        let entry = inner.entries.get_mut(&pid).expect("checked above");
        entry.pending_mask = Some(mask.clone());
        inner.stats.mask_sets += 1;
        if !victims.is_empty() {
            inner.stats.steals += 1;
        }
        let update = MaskUpdate { pid, mask };
        Self::notify(&inner, &update);
        for v in &victims {
            Self::notify(&inner, v);
        }
        Ok(SetMaskOutcome {
            updated: true,
            victims,
        })
    }

    /// Synchronous flavour of [`set_pending_mask`](Self::set_pending_mask):
    /// blocks until the target consumes the update or `timeout` elapses.
    pub fn set_pending_mask_sync(
        &self,
        pid: Pid,
        mask: CpuSet,
        steal: bool,
        timeout: Duration,
    ) -> Result<SetMaskOutcome, ShmemError> {
        let outcome = self.set_pending_mask(pid, mask, steal)?;
        if !outcome.updated {
            return Ok(outcome);
        }
        let mut inner = self.inner.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let still_pending = inner
                .entries
                .get(&pid)
                .map(|e| e.pending_mask.is_some())
                // If the process disappeared the update can never be consumed.
                .unwrap_or(false);
            if !still_pending {
                return Ok(outcome);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ShmemError::Timeout { pid });
            }
            if self
                .consumed
                .wait_until(&mut inner, deadline)
                .timed_out()
            {
                return Err(ShmemError::Timeout { pid });
            }
        }
    }

    /// Polls for a pending mask update (`DLB_PollDROM`).
    ///
    /// Returns `Ok(Some(mask))` and applies it when an update is pending,
    /// `Ok(None)` otherwise.
    pub fn poll(&self, pid: Pid) -> Result<Option<CpuSet>, ShmemError> {
        let mut inner = self.inner.lock();
        let entry = inner
            .entries
            .get_mut(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        entry.polls += 1;
        let result = if let Some(mask) = entry.pending_mask.take() {
            entry.current_mask = mask.clone();
            entry.mask_updates += 1;
            Some(mask)
        } else {
            None
        };
        inner.stats.polls += 1;
        if result.is_some() {
            inner.stats.poll_updates += 1;
            drop(inner);
            self.consumed.notify_all();
        }
        Ok(result)
    }

    /// Registers an asynchronous subscriber for `pid`: every mask update posted
    /// to that process is also sent on the returned channel. This backs DLB's
    /// asynchronous (helper thread + callback) mode.
    pub fn subscribe(&self, pid: Pid) -> Receiver<MaskUpdate> {
        let (tx, rx) = unbounded();
        self.inner.lock().subscribers.insert(pid, tx);
        rx
    }

    /// Removes the asynchronous subscriber of `pid`, if any.
    pub fn unsubscribe(&self, pid: Pid) {
        self.inner.lock().subscribers.remove(&pid);
    }

    // ------------------------------------------------------------------
    // LeWI idle pool (lend when idle)
    // ------------------------------------------------------------------

    /// Lends `cpus` from `pid`'s current mask to the node idle pool.
    ///
    /// Returns the CPUs actually lent (the intersection of the request with
    /// the process's current mask).
    pub fn lend_cpus(&self, pid: Pid, cpus: &CpuSet) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        let entry = inner
            .entries
            .get_mut(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        let lendable = entry.current_mask.intersection(cpus);
        entry.current_mask = entry.current_mask.difference(&lendable);
        // A pending (administrator) mask must stay consistent with what the
        // process just gave away, otherwise applying it later would hand the
        // lent CPUs to two owners at once.
        if let Some(pending) = entry.pending_mask.as_mut() {
            *pending = pending.difference(&lendable);
        }
        inner.idle_pool = inner.idle_pool.union(&lendable);
        inner.stats.cpus_lent += lendable.count() as u64;
        Ok(lendable)
    }

    /// Borrows up to `max_cpus` CPUs from the idle pool for `pid`.
    ///
    /// Returns the borrowed CPUs (possibly empty when the pool is dry).
    pub fn borrow_cpus(&self, pid: Pid, max_cpus: usize) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(&pid) {
            return Err(ShmemError::ProcessNotFound { pid });
        }
        let borrowed = inner.idle_pool.truncated(max_cpus);
        inner.idle_pool = inner.idle_pool.difference(&borrowed);
        let entry = inner.entries.get_mut(&pid).expect("checked above");
        entry.current_mask = entry.current_mask.union(&borrowed);
        // Keep any pending mask consistent so the borrowed CPUs are not lost
        // when the pending update is applied.
        if let Some(pending) = entry.pending_mask.as_mut() {
            *pending = pending.union(&borrowed);
        }
        inner.stats.cpus_borrowed += borrowed.count() as u64;
        Ok(borrowed)
    }

    /// Reclaims the CPUs `pid` originally owns: CPUs sitting in the idle pool
    /// return immediately; CPUs currently borrowed by other processes get a
    /// pending shrink posted to the borrower.
    ///
    /// Returns the CPUs immediately recovered.
    pub fn reclaim_cpus(&self, pid: Pid) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        let entry = inner
            .entries
            .get(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        let owned = entry.owned_cpus.clone();
        let current = entry.effective_mask().clone();
        let missing = owned.difference(&current);
        if missing.is_empty() {
            return Ok(CpuSet::new());
        }
        // CPUs waiting in the idle pool come back straight away.
        let from_pool = inner.idle_pool.intersection(&missing);
        inner.idle_pool = inner.idle_pool.difference(&from_pool);
        // CPUs held by borrowers get a pending shrink.
        let from_borrowers = missing.difference(&from_pool);
        if !from_borrowers.is_empty() {
            let borrower_pids: Vec<Pid> = inner
                .entries
                .values()
                .filter(|e| e.pid != pid && e.state != ProcessState::Finished)
                .map(|e| e.pid)
                .collect();
            for bpid in borrower_pids {
                let borrower = inner.entries.get_mut(&bpid).expect("pid listed above");
                let overlap = borrower.effective_mask().intersection(&from_borrowers);
                if overlap.is_empty() {
                    continue;
                }
                let shrunk = borrower.effective_mask().difference(&overlap);
                borrower.pending_mask = Some(shrunk.clone());
                let update = MaskUpdate {
                    pid: bpid,
                    mask: shrunk,
                };
                Self::notify(&inner, &update);
            }
        }
        if !from_pool.is_empty() {
            let entry = inner.entries.get_mut(&pid).expect("checked above");
            let grown = entry.effective_mask().union(&from_pool);
            entry.pending_mask = Some(grown);
        }
        inner.stats.cpus_reclaimed += missing.count() as u64;
        Ok(from_pool)
    }

    /// CPUs currently sitting in the LeWI idle pool.
    pub fn idle_pool(&self) -> CpuSet {
        self.inner.lock().idle_pool.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask() -> CpuSet {
        CpuSet::first_n(16)
    }

    #[test]
    fn register_and_query() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert_eq!(shmem.pid_list(), vec![10]);
        assert_eq!(shmem.current_mask(10).unwrap(), full_mask());
        assert_eq!(shmem.process_state(10).unwrap(), ProcessState::Active);
        assert!(!shmem.has_pending(10).unwrap());
        assert_eq!(shmem.stats().registers, 1);
    }

    #[test]
    fn register_twice_fails() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, CpuSet::from_range(0..8).unwrap()).unwrap();
        assert_eq!(
            shmem.register(10, CpuSet::from_range(8..16).unwrap()),
            Err(ShmemError::AlreadyRegistered { pid: 10 })
        );
    }

    #[test]
    fn register_conflicting_mask_fails() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, CpuSet::from_range(0..8).unwrap()).unwrap();
        let err = shmem
            .register(11, CpuSet::from_range(4..12).unwrap())
            .unwrap_err();
        assert!(matches!(err, ShmemError::CpuConflict { owner: 10, .. }));
    }

    #[test]
    fn register_invalid_masks() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(
            shmem.register(1, CpuSet::new()),
            Err(ShmemError::EmptyMask { pid: 1 })
        );
        assert_eq!(
            shmem.register(1, CpuSet::from_cpus([20]).unwrap()),
            Err(ShmemError::CpuOutOfNode {
                cpu: 20,
                node_cpus: 16
            })
        );
    }

    #[test]
    fn pending_mask_applied_on_poll() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let outcome = shmem
            .set_pending_mask(10, CpuSet::from_range(0..8).unwrap(), false)
            .unwrap();
        assert!(outcome.updated);
        assert!(outcome.victims.is_empty());
        assert!(shmem.has_pending(10).unwrap());
        // Current mask unchanged until the process polls.
        assert_eq!(shmem.current_mask(10).unwrap(), full_mask());
        let new = shmem.poll(10).unwrap().unwrap();
        assert_eq!(new, CpuSet::from_range(0..8).unwrap());
        assert_eq!(shmem.current_mask(10).unwrap(), new);
        assert!(!shmem.has_pending(10).unwrap());
        // Second poll finds nothing.
        assert_eq!(shmem.poll(10).unwrap(), None);
        let stats = shmem.stats();
        assert_eq!(stats.polls, 2);
        assert_eq!(stats.poll_updates, 1);
    }

    #[test]
    fn set_same_mask_is_noupdate() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let outcome = shmem.set_pending_mask(10, full_mask(), false).unwrap();
        assert!(!outcome.updated);
        assert!(!shmem.has_pending(10).unwrap());
    }

    #[test]
    fn second_pending_before_poll_is_pdirty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..8).unwrap(), false)
            .unwrap();
        let err = shmem
            .set_pending_mask(10, CpuSet::from_range(0..4).unwrap(), false)
            .unwrap_err();
        assert_eq!(err, ShmemError::PendingMaskNotConsumed { pid: 10 });
    }

    #[test]
    fn set_mask_unknown_pid() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(
            shmem.set_pending_mask(99, full_mask(), false),
            Err(ShmemError::ProcessNotFound { pid: 99 })
        );
        assert_eq!(
            shmem.poll(99),
            Err(ShmemError::ProcessNotFound { pid: 99 })
        );
    }

    #[test]
    fn grow_mask_requires_free_or_steal() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, CpuSet::from_range(0..8).unwrap()).unwrap();
        shmem.register(11, CpuSet::from_range(8..16).unwrap()).unwrap();
        // Growing pid 10 into pid 11's CPUs without steal fails.
        let err = shmem
            .set_pending_mask(10, CpuSet::from_range(0..12).unwrap(), false)
            .unwrap_err();
        assert!(matches!(err, ShmemError::CpuConflict { owner: 11, .. }));
        // With steal it succeeds and pid 11 is shrunk.
        let outcome = shmem
            .set_pending_mask(10, CpuSet::from_range(0..12).unwrap(), true)
            .unwrap();
        assert!(outcome.updated);
        assert_eq!(outcome.victims.len(), 1);
        assert_eq!(outcome.victims[0].pid, 11);
        assert_eq!(outcome.victims[0].mask, CpuSet::from_range(12..16).unwrap());
        // The victim applies the shrink at its next poll.
        assert_eq!(
            shmem.poll(11).unwrap().unwrap(),
            CpuSet::from_range(12..16).unwrap()
        );
    }

    #[test]
    fn steal_never_leaves_victim_empty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, CpuSet::from_range(0..8).unwrap()).unwrap();
        shmem.register(11, CpuSet::from_range(8..16).unwrap()).unwrap();
        // Stealing *all* of pid 11's CPUs must be refused.
        let err = shmem
            .set_pending_mask(10, CpuSet::first_n(16), true)
            .unwrap_err();
        assert_eq!(err, ShmemError::EmptyMask { pid: 11 });
    }

    #[test]
    fn preregister_then_register_adopts_mask() {
        let shmem = NodeShmem::new("n1", 16);
        // Running job owns the whole node.
        shmem.register(10, full_mask()).unwrap();
        // Administrator pre-inits a new process on CPUs 8-15, stealing them.
        let victims = shmem
            .preregister(20, CpuSet::from_range(8..16).unwrap(), true)
            .unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].pid, 10);
        assert_eq!(victims[0].mask, CpuSet::from_range(0..8).unwrap());
        assert_eq!(
            shmem.process_state(20).unwrap(),
            ProcessState::PreRegistered
        );
        // The new process starts and registers: it adopts the reserved mask.
        let adopted = shmem.register(20, CpuSet::first_n(1)).unwrap();
        assert_eq!(adopted, CpuSet::from_range(8..16).unwrap());
        assert_eq!(shmem.process_state(20).unwrap(), ProcessState::Active);
        // The victim shrinks at its next poll.
        assert_eq!(
            shmem.poll(10).unwrap().unwrap(),
            CpuSet::from_range(0..8).unwrap()
        );
    }

    #[test]
    fn preregister_without_steal_on_conflict_fails() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let err = shmem
            .preregister(20, CpuSet::from_range(8..16).unwrap(), false)
            .unwrap_err();
        assert!(matches!(err, ShmemError::CpuConflict { owner: 10, .. }));
    }

    #[test]
    fn unregister_returns_cpus_to_owner() {
        let shmem = NodeShmem::new("n1", 16);
        // pid 10 owns all 16 CPUs.
        shmem.register(10, full_mask()).unwrap();
        // pid 20 pre-inits on half of them (stealing).
        shmem
            .preregister(20, CpuSet::from_range(8..16).unwrap(), true)
            .unwrap();
        shmem.register(20, CpuSet::new()).unwrap();
        shmem.poll(10).unwrap(); // pid 10 shrinks to 0-7
        // pid 20 finishes: its CPUs go back to pid 10 (the original owner).
        let updates = shmem.unregister(20).unwrap();
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].pid, 10);
        assert_eq!(updates[0].mask, full_mask());
        assert_eq!(shmem.poll(10).unwrap().unwrap(), full_mask());
    }

    #[test]
    fn unregister_unknown_pid_fails() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(
            shmem.unregister(5),
            Err(ShmemError::ProcessNotFound { pid: 5 })
        );
    }

    #[test]
    fn free_cpus_accounts_for_pending() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert!(shmem.free_cpus().is_empty());
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..8).unwrap(), false)
            .unwrap();
        // Even before the poll the effective view frees CPUs 8-15.
        assert_eq!(shmem.free_cpus(), CpuSet::from_range(8..16).unwrap());
    }

    #[test]
    fn attach_detach_counting() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(shmem.detach(), Err(ShmemError::NotAttached));
        shmem.attach();
        shmem.attach();
        assert_eq!(shmem.attachments(), 2);
        shmem.detach().unwrap();
        shmem.detach().unwrap();
        assert_eq!(shmem.detach(), Err(ShmemError::NotAttached));
    }

    #[test]
    fn subscriber_receives_updates() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let rx = shmem.subscribe(10);
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..4).unwrap(), false)
            .unwrap();
        let update = rx.try_recv().unwrap();
        assert_eq!(update.pid, 10);
        assert_eq!(update.mask, CpuSet::from_range(0..4).unwrap());
        shmem.unsubscribe(10);
        shmem.poll(10).unwrap();
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..2).unwrap(), false)
            .unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn sync_set_mask_times_out_without_poll() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let err = shmem
            .set_pending_mask_sync(
                10,
                CpuSet::from_range(0..8).unwrap(),
                false,
                Duration::from_millis(20),
            )
            .unwrap_err();
        assert_eq!(err, ShmemError::Timeout { pid: 10 });
    }

    #[test]
    fn sync_set_mask_completes_when_polled() {
        use std::sync::Arc;
        let shmem = Arc::new(NodeShmem::new("n1", 16));
        shmem.register(10, full_mask()).unwrap();
        let poller = {
            let shmem = Arc::clone(&shmem);
            std::thread::spawn(move || {
                // Poll until the update arrives.
                loop {
                    if shmem.poll(10).unwrap().is_some() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let outcome = shmem
            .set_pending_mask_sync(
                10,
                CpuSet::from_range(0..8).unwrap(),
                false,
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(outcome.updated);
        poller.join().unwrap();
        assert_eq!(shmem.current_mask(10).unwrap(), CpuSet::from_range(0..8).unwrap());
    }

    #[test]
    fn lend_and_borrow_cycle() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, CpuSet::from_range(0..8).unwrap()).unwrap();
        shmem.register(11, CpuSet::from_range(8..16).unwrap()).unwrap();
        // pid 10 lends its upper 4 CPUs to the idle pool.
        let lent = shmem
            .lend_cpus(10, &CpuSet::from_range(4..8).unwrap())
            .unwrap();
        assert_eq!(lent.count(), 4);
        assert_eq!(shmem.idle_pool().count(), 4);
        assert_eq!(shmem.current_mask(10).unwrap().count(), 4);
        // pid 11 borrows two of them.
        let borrowed = shmem.borrow_cpus(11, 2).unwrap();
        assert_eq!(borrowed.count(), 2);
        assert_eq!(shmem.idle_pool().count(), 2);
        assert_eq!(shmem.current_mask(11).unwrap().count(), 10);
        // Owner reclaims: the two CPUs still in the pool return immediately
        // (posted as a pending grow to pid 10); the two borrowed ones are
        // posted as a pending shrink to pid 11.
        let recovered = shmem.reclaim_cpus(10).unwrap();
        assert_eq!(recovered.count(), 2);
        assert!(shmem.idle_pool().is_empty());
        assert!(shmem.has_pending(10).unwrap());
        assert!(shmem.has_pending(11).unwrap());
        assert_eq!(shmem.poll(10).unwrap().unwrap().count(), 6);
        assert_eq!(shmem.poll(11).unwrap().unwrap().count(), 8);
        let stats = shmem.stats();
        assert_eq!(stats.cpus_lent, 4);
        assert_eq!(stats.cpus_borrowed, 2);
        assert_eq!(stats.cpus_reclaimed, 4);
    }

    #[test]
    fn lend_only_own_cpus() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, CpuSet::from_range(0..8).unwrap()).unwrap();
        let lent = shmem.lend_cpus(10, &CpuSet::from_range(4..12).unwrap()).unwrap();
        assert_eq!(lent, CpuSet::from_range(4..8).unwrap());
    }

    #[test]
    fn borrow_from_empty_pool_is_empty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert!(shmem.borrow_cpus(10, 4).unwrap().is_empty());
    }

    #[test]
    fn reclaim_with_nothing_missing_is_empty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert!(shmem.reclaim_cpus(10).unwrap().is_empty());
        assert!(!shmem.has_pending(10).unwrap());
    }
}
