//! The per-node process registry: entries, pending-mask handshake, CPU
//! ownership, the LeWI idle pool and asynchronous subscriptions.
//!
//! # Storage layout and the lock-free poll fast path
//!
//! The segment is a fixed-size table of per-process slots, like the
//! original DLB `shmem_procinfo` array. Each slot carries one packed atomic
//! *stamp* word encoding the owning pid and a pending-update generation
//! counter (odd = an administrator posted a mask the process has not consumed
//! yet). `poll()` with no pending update and [`NodeShmem::has_pending`]
//! complete with a **single relaxed atomic load** of that stamp — no mutex is
//! acquired — so polling threads never serialize against administrator
//! traffic on the node. This is what makes `DLB_PollDROM` cheap enough to
//! call at every malleability point (paper §3.3, Table 1).
//!
//! Structural operations (register/unregister, mask updates, steals, LeWI)
//! still take the global registry mutex, and the pending-mask payload hands
//! off through the per-slot payload lock: writers update the payload first
//! and then flip the stamp parity, so a reader that observes "pending" takes
//! the slot lock and finds a fully written mask. Lock order is always
//! `inner` → one slot at a time; the poll slow path takes only the slot lock
//! (and briefly passes through `inner` *after* releasing it, to hand shake
//! with synchronous setters).

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use drom_cpuset::CpuSet;

// Sync primitives come through the facade so model-check builds
// (`--cfg drom_verify`) can swap in the drom-verify recording shims.
use crate::sync::{AtomicU64, Condvar, Mutex};

#[cfg(drom_verify)]
use crate::hazards;

use crate::error::ShmemError;
use crate::stats::ShmemStats;

/// Process identifier. In the reproduction pids are synthetic (handed out by
/// the launcher or by tests), but they play exactly the role of OS pids in the
/// original implementation.
pub type Pid = u32;

/// Life-cycle state of a registered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessState {
    /// Reserved by an administrator through `DROM_PreInit`; the process itself
    /// has not called `DLB_Init` yet.
    PreRegistered,
    /// The process called `DLB_Init` and participates in polling.
    Active,
    /// The process finished; the entry is kept only until `DROM_PostFinalize`.
    Finished,
}

/// One process registered in the node shared memory (a consistent snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessEntry {
    /// Process identifier.
    pub pid: Pid,
    /// Life-cycle state.
    pub state: ProcessState,
    /// The mask the process is currently running with.
    pub current_mask: CpuSet,
    /// A mask posted by an administrator that the process has not applied yet.
    pub pending_mask: Option<CpuSet>,
    /// CPUs this process was the original owner of (used to return stolen CPUs
    /// when another process finishes).
    pub owned_cpus: CpuSet,
    /// Registration order (monotonically increasing per node).
    pub registration_seq: u64,
    /// Number of polls performed by this process.
    pub polls: u64,
    /// Number of mask updates this process has applied.
    pub mask_updates: u64,
}

impl ProcessEntry {
    /// The mask the process will be running with once it consumes any pending
    /// update: `pending_mask` if present, `current_mask` otherwise.
    pub fn effective_mask(&self) -> &CpuSet {
        self.pending_mask.as_ref().unwrap_or(&self.current_mask)
    }
}

/// Notification describing a mask change posted to a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskUpdate {
    /// The process whose mask changed.
    pub pid: Pid,
    /// The new mask.
    pub mask: CpuSet,
}

/// Result of an administrator mask update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetMaskOutcome {
    /// `true` if a pending mask was posted; `false` when the requested mask
    /// equals the target's *effective* mask (`pending_mask` if one is posted,
    /// `current_mask` otherwise — with the pending-dirty guard the two
    /// coincide, since a posted mask must be consumed before the next update).
    pub updated: bool,
    /// Pending updates posted to *other* processes whose CPUs were stolen.
    ///
    /// A victim whose composed post-steal mask equals its current mask (the
    /// steal exactly cancelled a not-yet-consumed grow) has its pending update
    /// cleared instead and is not listed here.
    pub victims: Vec<MaskUpdate>,
}

/// Opaque handle caching the slot of a registered pid, for O(1) lock-free
/// polling without the pid → slot scan. Obtained from
/// [`NodeShmem::slot_hint`]; stale hints (the pid re-registered elsewhere)
/// transparently fall back to the scanning path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotHint {
    idx: usize,
}

// ---------------------------------------------------------------------------
// The packed per-slot stamp word
// ---------------------------------------------------------------------------
//
// bits 63..31 : pid + 1 (0 = slot free)
// bits 30..0  : pending generation, odd = a pending mask is posted
//
// `pid + 1` needs 33 bits for the full u32 pid range, so the generation gets
// the remaining 31 (it wraps; only parity and pid identity matter).

const GEN_BITS: u32 = 31;
const GEN_MASK: u64 = (1 << GEN_BITS) - 1;

#[inline]
fn stamp_pack(pid: Pid, gen: u64) -> u64 {
    ((pid as u64 + 1) << GEN_BITS) | (gen & GEN_MASK)
}

#[inline]
fn stamp_pid(stamp: u64) -> Option<Pid> {
    if stamp == 0 {
        None
    } else {
        Some(((stamp >> GEN_BITS) - 1) as Pid)
    }
}

#[inline]
fn stamp_pending(stamp: u64) -> bool {
    stamp != 0 && (stamp & 1) == 1
}

/// Increments the generation without touching the pid bits.
#[inline]
fn stamp_bump(stamp: u64) -> u64 {
    (stamp & !GEN_MASK) | ((stamp + 1) & GEN_MASK)
}

/// Ordering for the stamp store that publishes a newly occupied slot: the
/// `Release` pairs with [`probe_ordering`] scans, so a scanner that observes
/// the new entry also observes every earlier stamp write of the publishing
/// thread (in particular the pending shrinks a steal posted to its victims).
/// Weakenable to `Relaxed` by the model-check mutation tests.
#[inline]
fn publish_ordering() -> Ordering {
    #[cfg(drom_verify)]
    if hazards::on(&hazards::PUBLISH_STAMP_RELAXED) {
        return Ordering::Relaxed;
    }
    Ordering::Release
}

/// Ordering for the stamp scan in `find_slot` (the `Acquire` side of
/// [`publish_ordering`]). Weakenable to `Relaxed` by the model-check
/// mutation tests.
#[inline]
fn probe_ordering() -> Ordering {
    #[cfg(drom_verify)]
    if hazards::on(&hazards::FIND_SLOT_RELAXED) {
        return Ordering::Relaxed;
    }
    Ordering::Acquire
}

/// The lock-protected part of one process slot.
#[derive(Debug)]
struct SlotPayload {
    pid: Pid,
    state: ProcessState,
    current_mask: CpuSet,
    pending_mask: Option<CpuSet>,
    owned_cpus: CpuSet,
    registration_seq: u64,
}

impl SlotPayload {
    fn effective_mask(&self) -> &CpuSet {
        self.pending_mask.as_ref().unwrap_or(&self.current_mask)
    }
}

/// One entry of the fixed-size process table.
struct Slot {
    /// Packed pid + pending generation; see the module docs. Written only
    /// under `payload`'s lock (or the registry lock for occupancy changes),
    /// read lock-free by pollers.
    stamp: AtomicU64,
    polls: AtomicU64,
    mask_updates: AtomicU64,
    payload: Mutex<Option<Box<SlotPayload>>>,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            mask_updates: AtomicU64::new(0),
            payload: Mutex::new(None),
        }
    }

    /// Re-aligns the stamp parity with `payload.pending_mask`; must be called
    /// (while holding the payload lock) after every pending-mask change.
    fn sync_pending_stamp(&self, payload: &SlotPayload) {
        let stamp = self.stamp.load(Ordering::Relaxed);
        #[cfg(drom_verify)]
        if hazards::on(&hazards::UNCONDITIONAL_STAMP_BUMP) {
            self.stamp.store(stamp_bump(stamp), Ordering::Release);
            return;
        }
        if stamp_pending(stamp) != payload.pending_mask.is_some() {
            self.stamp.store(stamp_bump(stamp), Ordering::Release);
        }
    }
}

/// Result of a (validated) steal: the shrinks posted to victims, plus the
/// corrective notifications for victims whose own pending update was
/// cancelled outright (synchronous waiters must be woken and subscribers
/// told the still-authoritative current mask).
#[derive(Default)]
struct StolenCpus {
    victims: Vec<MaskUpdate>,
    corrections: Vec<MaskUpdate>,
}

impl StolenCpus {
    fn cancelled_pending(&self) -> bool {
        !self.corrections.is_empty()
    }
}

/// One victim shrink validated by `steal_cpus` phase 1, applied in phase 2.
struct PlannedShrink {
    seq: u64,
    pid: Pid,
    idx: usize,
    shrunk: CpuSet,
    /// Phase-1 snapshot of the cancel-vs-post decision. The real protocol
    /// re-makes this decision on the live payload in phase 2 (a poll can
    /// race between the phases); this field exists only so the
    /// `STALE_STEAL_DECISION` model-check mutant can use the stale value.
    #[cfg_attr(not(drom_verify), allow(dead_code))]
    cancels: bool,
}

/// Occupied slots in pid order. `HashMap` iteration order varies per map and
/// per process; every path that visits multiple slots uses this instead, so
/// identical registry contents produce identical operation sequences —
/// required by the replaying model checker, and it makes multi-victim error
/// reporting deterministic.
fn sorted_index(inner: &Inner) -> Vec<(Pid, usize)> {
    let mut pairs: Vec<(Pid, usize)> = inner.index.iter().map(|(&p, &i)| (p, i)).collect();
    pairs.sort_unstable();
    pairs
}

struct Inner {
    /// pid → slot index for every occupied slot (including `Finished` ones).
    index: HashMap<Pid, usize>,
    /// Original owner of each CPU: the first process that registered with it.
    cpu_owner: HashMap<usize, Pid>,
    /// CPUs lent to the node-wide idle pool (LeWI).
    idle_pool: CpuSet,
    /// Number of administrators currently attached.
    admin_attachments: usize,
    /// Asynchronous-mode subscribers, per pid.
    subscribers: HashMap<Pid, Sender<MaskUpdate>>,
    stats: ShmemStats,
    next_seq: u64,
}

/// The shared-memory segment of one compute node.
///
/// All methods take `&self`; the registry is internally synchronised exactly
/// like the lock-protected shared memory of the original DLB — except that
/// the poll/has-pending fast path is a single atomic load (see module docs).
pub struct NodeShmem {
    name: String,
    node_cpus: usize,
    slots: Box<[Slot]>,
    inner: Mutex<Inner>,
    /// Signalled whenever a pending mask is consumed *or cancelled* (used by
    /// the synchronous flavour of `set_pending_mask`).
    consumed: Condvar,
    /// Node-wide poll counters, kept out of `inner` so the poll fast path
    /// never locks.
    total_polls: AtomicU64,
    total_poll_updates: AtomicU64,
}

impl NodeShmem {
    /// Creates the shared-memory segment for a node with `node_cpus` CPUs.
    ///
    /// Like the original DLB procinfo array the process table has a fixed
    /// capacity, sized generously at twice the CPU count: at most `node_cpus`
    /// non-finished processes can hold CPUs at once (their effective masks
    /// are disjoint and non-empty), and the slack absorbs entries that occupy
    /// a slot without holding CPUs — finished-but-not-finalized processes and
    /// live ones that lent their whole mask to the LeWI pool. A saturated
    /// table fails cleanly with [`ShmemError::NodeFull`].
    pub fn new(name: impl Into<String>, node_cpus: usize) -> Self {
        let capacity = node_cpus.saturating_mul(2).max(4);
        NodeShmem {
            name: name.into(),
            node_cpus,
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            inner: Mutex::new(Inner {
                index: HashMap::new(),
                cpu_owner: HashMap::new(),
                idle_pool: CpuSet::new(),
                admin_attachments: 0,
                subscribers: HashMap::new(),
                stats: ShmemStats::default(),
                next_seq: 0,
            }),
            consumed: Condvar::new(),
            total_polls: AtomicU64::new(0),
            total_poll_updates: AtomicU64::new(0),
        }
    }

    /// Node name this segment belongs to.
    pub fn node_name(&self) -> &str {
        &self.name
    }

    /// Number of CPUs of the node.
    pub fn node_cpus(&self) -> usize {
        self.node_cpus
    }

    /// Capacity of the fixed-size process table.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    fn validate_mask(&self, pid: Pid, mask: &CpuSet, allow_empty: bool) -> Result<(), ShmemError> {
        if !allow_empty && mask.is_empty() {
            return Err(ShmemError::EmptyMask { pid });
        }
        if let Some(cpu) = mask.last() {
            if cpu >= self.node_cpus {
                return Err(ShmemError::CpuOutOfNode {
                    cpu,
                    node_cpus: self.node_cpus,
                });
            }
        }
        Ok(())
    }

    /// Lock-free pid → slot scan; returns the index and the observed stamp.
    fn find_slot(&self, pid: Pid) -> Option<(usize, u64)> {
        for (idx, slot) in self.slots.iter().enumerate() {
            let stamp = slot.stamp.load(probe_ordering());
            if stamp_pid(stamp) == Some(pid) {
                return Some((idx, stamp));
            }
        }
        None
    }

    /// Runs `f` on the payload of an occupied slot. Callers must hold the
    /// registry lock and have obtained `idx` from `inner.index` (slots listed
    /// there are occupied by invariant).
    // PANIC: callers hold the registry lock and take `idx` from `inner.index`,
    // whose slots are in range and occupied by invariant (see doc above).
    fn with_payload<R>(&self, idx: usize, f: impl FnOnce(&Slot, &mut SlotPayload) -> R) -> R {
        let slot = &self.slots[idx];
        let mut guard = slot.payload.lock();
        let payload = guard.as_mut().expect("indexed slot is occupied");
        f(slot, payload)
    }

    // ------------------------------------------------------------------
    // Administrator attach/detach
    // ------------------------------------------------------------------

    /// Attaches an administrator to this segment (`DROM_Attach`).
    pub fn attach(&self) {
        self.inner.lock().admin_attachments += 1;
    }

    /// Detaches an administrator (`DROM_Detach`).
    ///
    /// # Errors
    ///
    /// Returns [`ShmemError::NotAttached`] if no administrator is attached.
    pub fn detach(&self) -> Result<(), ShmemError> {
        let mut inner = self.inner.lock();
        if inner.admin_attachments == 0 {
            return Err(ShmemError::NotAttached);
        }
        inner.admin_attachments -= 1;
        Ok(())
    }

    /// Number of administrators currently attached.
    pub fn attachments(&self) -> usize {
        self.inner.lock().admin_attachments
    }

    // ------------------------------------------------------------------
    // Process registration life-cycle
    // ------------------------------------------------------------------

    /// Registers a process with its initial mask (`DLB_Init`).
    ///
    /// If the pid was pre-registered by an administrator the entry becomes
    /// active and keeps the pre-registered mask (the `mask` argument is only
    /// used when it was not pre-registered).
    ///
    /// # Errors
    ///
    /// * [`ShmemError::AlreadyRegistered`] if the pid is already active.
    /// * [`ShmemError::CpuConflict`] if the mask overlaps another process's
    ///   effective mask.
    /// * [`ShmemError::CpuOutOfNode`] / [`ShmemError::EmptyMask`] on invalid
    ///   masks.
    /// * [`ShmemError::NodeFull`] if the process table has no free slot.
    pub fn register(&self, pid: Pid, mask: CpuSet) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.index.get(&pid) {
            let adopted = self.with_payload(idx, |_, p| match p.state {
                ProcessState::PreRegistered => {
                    // The child of a pre-initialized launch: adopt the
                    // pre-registered mask and become active.
                    p.state = ProcessState::Active;
                    Ok(p.current_mask.clone())
                }
                ProcessState::Active | ProcessState::Finished => {
                    Err(ShmemError::AlreadyRegistered { pid })
                }
            })?;
            inner.stats.registers += 1;
            return Ok(adopted);
        }
        self.validate_mask(pid, &mask, false)?;
        self.check_conflicts(&inner, pid, &mask)?;
        let idx = self.find_free_slot(pid)?;
        self.insert_entry(&mut inner, idx, pid, mask.clone(), ProcessState::Active);
        inner.stats.registers += 1;
        Ok(mask)
    }

    /// Pre-registers a process on behalf of an administrator (`DROM_PreInit`).
    ///
    /// If `steal` is `true`, CPUs of `mask` that other processes currently hold
    /// are removed from those processes (a pending shrink is posted to each
    /// victim and returned). The steal is all-or-nothing: every victim is
    /// validated before any entry is touched, so a failure leaves the registry
    /// byte-identical. If `steal` is `false` a conflict is an error.
    pub fn preregister(
        &self,
        pid: Pid,
        mask: CpuSet,
        steal: bool,
    ) -> Result<Vec<MaskUpdate>, ShmemError> {
        let mut inner = self.inner.lock();
        if inner.index.contains_key(&pid) {
            return Err(ShmemError::AlreadyRegistered { pid });
        }
        self.validate_mask(pid, &mask, false)?;
        // Pick the slot before mutating anyone so a full table cannot leave
        // the victims shrunk for a process that never materialises. Occupancy
        // cannot change while `inner` is held, so the index stays free until
        // `insert_entry` fills it.
        let idx = self.find_free_slot(pid)?;
        let stolen = if steal {
            self.steal_cpus(&mut inner, pid, &mask)?
        } else {
            self.check_conflicts(&inner, pid, &mask)?;
            StolenCpus::default()
        };
        self.insert_entry(&mut inner, idx, pid, mask, ProcessState::PreRegistered);
        inner.stats.preregisters += 1;
        for update in stolen.victims.iter().chain(&stolen.corrections) {
            Self::notify(&inner, update);
        }
        drop(inner);
        if stolen.cancelled_pending() {
            self.consumed.notify_all();
        }
        Ok(stolen.victims)
    }

    /// Marks a process as finished without removing it (used when the
    /// application exits before the administrator calls `DROM_PostFinalize`).
    pub fn mark_finished(&self, pid: Pid) -> Result<(), ShmemError> {
        let inner = self.inner.lock();
        let idx = *inner
            .index
            .get(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        self.with_payload(idx, |_, p| p.state = ProcessState::Finished);
        Ok(())
    }

    /// Removes a process from the registry (`DLB_Finalize` /
    /// `DROM_PostFinalize`) and returns the CPUs it released, grouped by the
    /// process that originally owned them and is still registered.
    ///
    /// The returned updates are pending expansions posted to those owners, so
    /// they will re-acquire their CPUs at their next malleability point — this
    /// is the "return CPUs to the job that is initial owner" behaviour of
    /// `DROM_PostFinalize`.
    pub fn unregister(&self, pid: Pid) -> Result<Vec<MaskUpdate>, ShmemError> {
        let mut inner = self.inner.lock();
        let idx = inner
            .index
            .remove(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        let slot = &self.slots[idx];
        let payload = slot
            .payload
            .lock()
            .take()
            .expect("indexed slot is occupied");
        slot.stamp.store(0, Ordering::Release);
        inner.stats.unregisters += 1;
        inner.subscribers.remove(&pid);

        let released = payload.effective_mask().clone();
        // Drop ownership of CPUs this process owned.
        inner.cpu_owner.retain(|_, owner| *owner != pid);
        // Remove any of its CPUs from the idle pool bookkeeping.
        inner.idle_pool = inner.idle_pool.difference(&payload.owned_cpus);

        // Return released CPUs to their original owners, if still registered.
        let mut per_owner: HashMap<Pid, CpuSet> = HashMap::new();
        for cpu in released.iter() {
            if let Some(owner) = inner.cpu_owner.get(&cpu).copied() {
                if owner != pid && inner.index.contains_key(&owner) {
                    per_owner.entry(owner).or_default().set(cpu).ok();
                }
            }
        }
        let mut updates = Vec::new();
        let mut per_owner: Vec<(Pid, CpuSet)> = per_owner.into_iter().collect();
        // Deterministic owner visit order (see `sorted_index`).
        per_owner.sort_unstable_by_key(|(owner, _)| *owner);
        for (owner, cpus) in per_owner {
            let oidx = inner.index[&owner];
            let update = self.with_payload(oidx, |oslot, op| {
                let new_mask = op.effective_mask().union(&cpus);
                if &new_mask != op.effective_mask() {
                    op.pending_mask = Some(new_mask.clone());
                    oslot.sync_pending_stamp(op);
                    Some(MaskUpdate {
                        pid: owner,
                        mask: new_mask,
                    })
                } else {
                    None
                }
            });
            if let Some(update) = update {
                Self::notify(&inner, &update);
                updates.push(update);
            }
        }
        drop(inner);
        // A synchronous setter waiting on the vanished process can never be
        // satisfied; wake it so it observes the missing entry.
        self.consumed.notify_all();
        Ok(updates)
    }

    /// Returns the index of a free slot, or [`ShmemError::NodeFull`].
    fn find_free_slot(&self, pid: Pid) -> Result<usize, ShmemError> {
        self.slots
            .iter()
            .position(|s| s.stamp.load(Ordering::Relaxed) == 0)
            .ok_or(ShmemError::NodeFull {
                pid,
                capacity: self.slots.len(),
            })
    }

    /// Fills the free slot `idx` (from [`find_free_slot`](Self::find_free_slot),
    /// resolved before any mutation so a full table errors out with the
    /// registry unchanged) and publishes it to lock-free scanners.
    fn insert_entry(
        &self,
        inner: &mut Inner,
        idx: usize,
        pid: Pid,
        mask: CpuSet,
        state: ProcessState,
    ) {
        for cpu in mask.iter() {
            inner.cpu_owner.entry(cpu).or_insert(pid);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let owned: CpuSet = mask
            .iter()
            .filter(|cpu| inner.cpu_owner.get(cpu) == Some(&pid))
            .collect();
        let slot = &self.slots[idx];
        *slot.payload.lock() = Some(Box::new(SlotPayload {
            pid,
            state,
            current_mask: mask,
            pending_mask: None,
            owned_cpus: owned,
            registration_seq: seq,
        }));
        slot.polls.store(0, Ordering::Relaxed);
        slot.mask_updates.store(0, Ordering::Relaxed);
        // Publish the occupied slot to lock-free scanners last.
        slot.stamp.store(stamp_pack(pid, 0), publish_ordering());
        inner.index.insert(pid, idx);
    }

    fn check_conflicts(&self, inner: &Inner, pid: Pid, mask: &CpuSet) -> Result<(), ShmemError> {
        for (other, idx) in sorted_index(inner) {
            if other == pid {
                continue;
            }
            let conflict = self.with_payload(idx, |_, p| {
                if p.state == ProcessState::Finished {
                    return None;
                }
                p.effective_mask().intersection(mask).first()
            });
            if let Some(cpu) = conflict {
                return Err(ShmemError::CpuConflict { cpu, owner: other });
            }
        }
        Ok(())
    }

    /// Shrinks every process that holds CPUs of `mask`, posting pending
    /// updates. All-or-nothing: phase 1 validates every victim's composed
    /// post-steal mask without mutating anything; only if all victims survive
    /// does phase 2 apply the shrinks. A failure therefore leaves every
    /// entry's `pending_mask`/`current_mask` untouched.
    ///
    /// Steals compose against each victim's *effective* mask, so a victim's
    /// own unconsumed pending update is folded in rather than clobbered: what
    /// remains pending is "their posted mask minus the stolen CPUs". When
    /// that composition collapses to the victim's current mask (the steal
    /// exactly revoked a not-yet-consumed grow) the pending update is
    /// cancelled instead of posting a no-op.
    fn steal_cpus(
        &self,
        inner: &mut Inner,
        beneficiary: Pid,
        mask: &CpuSet,
    ) -> Result<StolenCpus, ShmemError> {
        #[cfg(drom_verify)]
        let eager_apply = hazards::on(&hazards::EAGER_STEAL_APPLY);
        #[cfg(not(drom_verify))]
        let eager_apply = false;
        // Phase 1: validate.
        let mut plan: Vec<PlannedShrink> = Vec::new();
        let mut stolen = StolenCpus::default();
        for (vpid, idx) in sorted_index(inner) {
            if vpid == beneficiary {
                continue;
            }
            let planned = self.with_payload(idx, |_, p| {
                if p.state == ProcessState::Finished {
                    return Ok(None);
                }
                let overlap = p.effective_mask().intersection(mask);
                if overlap.is_empty() {
                    return Ok(None);
                }
                let shrunk = p.effective_mask().difference(&overlap);
                if shrunk.is_empty() {
                    // Never leave a victim with zero CPUs: that would stall it
                    // forever. The original implementation refuses as well.
                    return Err(ShmemError::EmptyMask { pid: vpid });
                }
                Ok(Some(PlannedShrink {
                    seq: p.registration_seq,
                    pid: vpid,
                    idx,
                    shrunk: shrunk.clone(),
                    cancels: p.pending_mask.is_some() && shrunk == p.current_mask,
                }))
            })?;
            if let Some(planned) = planned {
                if eager_apply {
                    // EAGER_STEAL_APPLY mutant: mutate the victim while later
                    // candidates are still unvalidated (breaks all-or-nothing).
                    self.apply_planned_shrink(&planned, &mut stolen);
                } else {
                    plan.push(planned);
                }
            }
        }
        // Phase 2: apply, in registration order for deterministic victim
        // lists.
        plan.sort_by_key(|p| p.seq);
        for planned in plan {
            self.apply_planned_shrink(&planned, &mut stolen);
        }
        if !stolen.victims.is_empty() || stolen.cancelled_pending() {
            inner.stats.steals += 1;
        }
        Ok(stolen)
    }

    /// Applies one validated shrink to its victim. The planned shrink stays
    /// valid across the two phases — a racing poll moves pending → current
    /// but never changes the *effective* mask it was computed from — but
    /// whether it cancels the victim's pending or posts a shrink depends on
    /// the *current* mask, which a poll does change. Decide that under the
    /// slot lock, on the live payload, so a consume racing between the
    /// phases downgrades a planned cancel into a posted shrink instead of
    /// dropping it.
    fn apply_planned_shrink(&self, planned: &PlannedShrink, stolen: &mut StolenCpus) {
        self.with_payload(planned.idx, |slot, p| {
            #[cfg(drom_verify)]
            let cancels = if hazards::on(&hazards::STALE_STEAL_DECISION) {
                // Mutant: trust the phase-1 snapshot instead of re-deciding.
                planned.cancels
            } else {
                p.pending_mask.is_some() && planned.shrunk == p.current_mask
            };
            #[cfg(not(drom_verify))]
            let cancels = p.pending_mask.is_some() && planned.shrunk == p.current_mask;
            if cancels {
                p.pending_mask = None;
                slot.sync_pending_stamp(p);
                // Subscribers already heard the now-revoked update; tell
                // them the current mask is authoritative again.
                stolen.corrections.push(MaskUpdate {
                    pid: planned.pid,
                    mask: p.current_mask.clone(),
                });
            } else {
                p.pending_mask = Some(planned.shrunk.clone());
                slot.sync_pending_stamp(p);
                stolen.victims.push(MaskUpdate {
                    pid: planned.pid,
                    mask: planned.shrunk.clone(),
                });
            }
        });
    }

    fn notify(inner: &Inner, update: &MaskUpdate) {
        if let Some(tx) = inner.subscribers.get(&update.pid) {
            // A dropped receiver just means the process stopped listening.
            let _ = tx.send(update.clone());
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Builds the public snapshot of an indexed slot. Callers hold `inner`.
    // ALLOC(pass): the snapshot clones the slot's masks into the query result.
    // PANIC: indexed slots are in range by the `inner.index` invariant.
    fn entry_at(&self, idx: usize) -> ProcessEntry {
        let slot = &self.slots[idx];
        self.with_payload(idx, |_, p| ProcessEntry {
            pid: p.pid,
            state: p.state,
            current_mask: p.current_mask.clone(),
            pending_mask: p.pending_mask.clone(),
            owned_cpus: p.owned_cpus.clone(),
            registration_seq: p.registration_seq,
            polls: slot.polls.load(Ordering::Relaxed),
            mask_updates: slot.mask_updates.load(Ordering::Relaxed),
        })
    }

    /// Lists the pids registered in this node (pre-registered and active).
    ///
    /// Taken under the registry lock so concurrent re-registrations can never
    /// produce duplicates or transient gaps (queries are not on the poll fast
    /// path).
    pub fn pid_list(&self) -> Vec<Pid> {
        let inner = self.inner.lock();
        let mut pids: Vec<Pid> = inner
            .index
            .iter()
            .filter(|&(_, &idx)| self.with_payload(idx, |_, p| p.state != ProcessState::Finished))
            .map(|(&pid, _)| pid)
            .collect();
        pids.sort_unstable();
        pids
    }

    /// Returns a snapshot of a process entry.
    pub fn entry(&self, pid: Pid) -> Result<ProcessEntry, ShmemError> {
        let inner = self.inner.lock();
        let idx = *inner
            .index
            .get(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        Ok(self.entry_at(idx))
    }

    /// Snapshot of every entry in the table (including `Finished` ones),
    /// sorted by pid. Useful for tests asserting that failed operations left
    /// the registry untouched.
    pub fn entries(&self) -> Vec<ProcessEntry> {
        let inner = self.inner.lock();
        let mut entries: Vec<ProcessEntry> = inner
            .index
            .values()
            .map(|&idx| self.entry_at(idx))
            .collect();
        entries.sort_by_key(|e| e.pid);
        entries
    }

    /// The mask the process is currently running with.
    pub fn current_mask(&self, pid: Pid) -> Result<CpuSet, ShmemError> {
        Ok(self.entry(pid)?.current_mask)
    }

    /// The mask the process will run with after applying any pending update.
    pub fn effective_mask(&self, pid: Pid) -> Result<CpuSet, ShmemError> {
        Ok(self.entry(pid)?.effective_mask().clone())
    }

    /// Life-cycle state of a process.
    pub fn process_state(&self, pid: Pid) -> Result<ProcessState, ShmemError> {
        Ok(self.entry(pid)?.state)
    }

    /// `true` if the process has a pending mask it has not consumed yet.
    ///
    /// Lock-free: a single relaxed atomic load per slot scanned (one load
    /// with a [`SlotHint`], see [`has_pending_hinted`](Self::has_pending_hinted)).
    pub fn has_pending(&self, pid: Pid) -> Result<bool, ShmemError> {
        let (_, stamp) = self
            .find_slot(pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        Ok(stamp_pending(stamp))
    }

    /// CPUs of the node not effectively assigned to any registered process and
    /// not lent to the idle pool.
    pub fn free_cpus(&self) -> CpuSet {
        let inner = self.inner.lock();
        let mut used = inner.idle_pool.clone();
        for &idx in inner.index.values() {
            let effective = self.with_payload(idx, |_, p| {
                (p.state != ProcessState::Finished).then(|| p.effective_mask().clone())
            });
            if let Some(mask) = effective {
                used = used.union(&mask);
            }
        }
        CpuSet::first_n(self.node_cpus).difference(&used)
    }

    /// Snapshot of the per-node statistics.
    pub fn stats(&self) -> ShmemStats {
        let mut stats = self.inner.lock().stats.clone();
        stats.polls = self.total_polls.load(Ordering::Relaxed);
        stats.poll_updates = self.total_poll_updates.load(Ordering::Relaxed);
        stats
    }

    /// Original owner of a CPU, if any process registered it.
    pub fn cpu_owner(&self, cpu: usize) -> Option<Pid> {
        self.inner.lock().cpu_owner.get(&cpu).copied()
    }

    // ------------------------------------------------------------------
    // Administrator mask updates and process polling
    // ------------------------------------------------------------------

    /// Posts a new mask for `pid` (`DROM_SetProcessMask`).
    ///
    /// The update is *pending*: the target applies it at its next poll. When
    /// `steal` is set, CPUs held by other processes are removed from them
    /// (pending shrinks are posted and returned in
    /// [`SetMaskOutcome::victims`]); otherwise a conflict is an error. A
    /// failed steal is all-or-nothing: no entry (target or victim) is
    /// modified.
    ///
    /// # Errors
    ///
    /// * [`ShmemError::ProcessNotFound`] for unknown pids.
    /// * [`ShmemError::PendingMaskNotConsumed`] if a previous update is still
    ///   pending.
    /// * [`ShmemError::CpuConflict`] when not stealing and CPUs are taken.
    /// * [`ShmemError::EmptyMask`] when a steal would leave a victim with no
    ///   CPUs.
    pub fn set_pending_mask(
        &self,
        pid: Pid,
        mask: CpuSet,
        steal: bool,
    ) -> Result<SetMaskOutcome, ShmemError> {
        let mut inner = self.inner.lock();
        let idx = *inner
            .index
            .get(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        self.validate_mask(pid, &mask, false)?;
        // No-op when the request equals the *effective* mask (which, after
        // the pending-dirty guard, is the current mask). Conflicts only
        // matter for CPUs we are adding on top of it.
        let additions = self.with_payload(idx, |_, p| {
            if p.pending_mask.is_some() {
                return Err(ShmemError::PendingMaskNotConsumed { pid });
            }
            if p.effective_mask() == &mask {
                return Ok(None);
            }
            Ok(Some(mask.difference(p.effective_mask())))
        })?;
        let Some(additions) = additions else {
            return Ok(SetMaskOutcome {
                updated: false,
                victims: Vec::new(),
            });
        };
        let stolen = if steal {
            self.steal_cpus(&mut inner, pid, &additions)?
        } else {
            self.check_conflicts(&inner, pid, &additions)?;
            StolenCpus::default()
        };
        self.with_payload(idx, |slot, p| {
            p.pending_mask = Some(mask.clone());
            slot.sync_pending_stamp(p);
        });
        inner.stats.mask_sets += 1;
        let update = MaskUpdate { pid, mask };
        Self::notify(&inner, &update);
        for v in stolen.victims.iter().chain(&stolen.corrections) {
            Self::notify(&inner, v);
        }
        drop(inner);
        if stolen.cancelled_pending() {
            self.consumed.notify_all();
        }
        Ok(SetMaskOutcome {
            updated: true,
            victims: stolen.victims,
        })
    }

    /// Synchronous flavour of [`set_pending_mask`](Self::set_pending_mask):
    /// blocks until the target consumes the update or `timeout` elapses.
    ///
    /// Also returns successfully when the posted update is *cancelled* by a
    /// concurrent steal (the composed mask equalled the target's current one)
    /// or the target unregisters: in both cases nothing remains to consume.
    pub fn set_pending_mask_sync(
        &self,
        pid: Pid,
        mask: CpuSet,
        steal: bool,
        timeout: Duration,
    ) -> Result<SetMaskOutcome, ShmemError> {
        let outcome = self.set_pending_mask(pid, mask, steal)?;
        if !outcome.updated {
            return Ok(outcome);
        }
        // Resolve the slot once so the re-checks under `inner` are a single
        // stamp load, not a table scan per wakeup. A vanished pid (stale
        // hint, error from the fallback scan) reads as "nothing pending": the
        // update can never be consumed, which we report as success — see the
        // doc comment above.
        let hint = self.slot_hint(pid).unwrap_or(SlotHint { idx: usize::MAX });
        let still_pending = |this: &Self| this.has_pending_hinted(hint, pid).unwrap_or(false);
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            // Lock-free check; consumers pass through `inner` before
            // signalling, so a check under the lock cannot miss a wakeup.
            if !still_pending(self) {
                return Ok(outcome);
            }
            if std::time::Instant::now() >= deadline {
                return Err(ShmemError::Timeout { pid });
            }
            if self.consumed.wait_until(&mut inner, deadline).timed_out() {
                // The consumption may have raced the deadline: re-check once
                // before reporting a timeout.
                if !still_pending(self) {
                    return Ok(outcome);
                }
                return Err(ShmemError::Timeout { pid });
            }
        }
    }

    /// Polls for a pending mask update (`DLB_PollDROM`).
    ///
    /// Returns `Ok(Some(mask))` and applies it when an update is pending,
    /// `Ok(None)` otherwise. The `Ok(None)` path is lock-free: one relaxed
    /// atomic load of the slot stamp (plus counter increments).
    pub fn poll(&self, pid: Pid) -> Result<Option<CpuSet>, ShmemError> {
        let (idx, _) = self
            .find_slot(pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        self.poll_slot(idx, pid)
    }

    /// Returns a [`SlotHint`] for `pid`, making subsequent
    /// [`poll_hinted`](Self::poll_hinted) / [`has_pending_hinted`](Self::has_pending_hinted)
    /// calls O(1) instead of scanning the slot table.
    pub fn slot_hint(&self, pid: Pid) -> Result<SlotHint, ShmemError> {
        let (idx, _) = self
            .find_slot(pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        Ok(SlotHint { idx })
    }

    /// [`poll`](Self::poll) through a cached [`SlotHint`]: the empty-poll fast
    /// path is a single relaxed atomic load. A stale hint falls back to the
    /// scanning path.
    pub fn poll_hinted(&self, hint: SlotHint, pid: Pid) -> Result<Option<CpuSet>, ShmemError> {
        if hint.idx < self.slots.len() {
            match self.poll_slot(hint.idx, pid) {
                Err(ShmemError::ProcessNotFound { .. }) => {}
                result => return result,
            }
        }
        self.poll(pid)
    }

    /// [`has_pending`](Self::has_pending) through a cached [`SlotHint`]: a
    /// single relaxed atomic load. A stale hint falls back to the scan.
    pub fn has_pending_hinted(&self, hint: SlotHint, pid: Pid) -> Result<bool, ShmemError> {
        if hint.idx < self.slots.len() {
            let stamp = self.slots[hint.idx].stamp.load(Ordering::Relaxed);
            if stamp_pid(stamp) == Some(pid) {
                return Ok(stamp_pending(stamp));
            }
        }
        self.has_pending(pid)
    }

    fn poll_slot(&self, idx: usize, pid: Pid) -> Result<Option<CpuSet>, ShmemError> {
        let slot = &self.slots[idx];
        let stamp = slot.stamp.load(Ordering::Relaxed);
        if stamp_pid(stamp) != Some(pid) {
            return Err(ShmemError::ProcessNotFound { pid });
        }
        slot.polls.fetch_add(1, Ordering::Relaxed);
        self.total_polls.fetch_add(1, Ordering::Relaxed);
        if !stamp_pending(stamp) {
            // Fast path: no pending update, no lock acquired.
            return Ok(None);
        }
        // Slow path: take the slot lock to hand the payload off. The stamp
        // may have moved on while we were acquiring it, so re-check under the
        // lock (another poller of the same pid may have consumed the mask).
        let mask = {
            let mut guard = slot.payload.lock();
            let payload = match guard.as_mut() {
                Some(p) if p.pid == pid => p,
                _ => return Err(ShmemError::ProcessNotFound { pid }),
            };
            let Some(mask) = payload.pending_mask.take() else {
                return Ok(None);
            };
            payload.current_mask = mask.clone();
            slot.sync_pending_stamp(payload);
            mask
        };
        slot.mask_updates.fetch_add(1, Ordering::Relaxed);
        self.total_poll_updates.fetch_add(1, Ordering::Relaxed);
        // Hand-shake with synchronous setters: they re-check the pending bit
        // under `inner`, so passing through the lock before signalling
        // guarantees they are either not yet waiting (and will see the bit
        // cleared) or already parked (and will be woken).
        #[cfg(drom_verify)]
        let skip_handshake = hazards::on(&hazards::SKIP_CONSUME_HANDSHAKE);
        #[cfg(not(drom_verify))]
        let skip_handshake = false;
        if !skip_handshake {
            drop(self.inner.lock());
        }
        self.consumed.notify_all();
        Ok(Some(mask))
    }

    /// Registers an asynchronous subscriber for `pid`: every mask update posted
    /// to that process is also sent on the returned channel. This backs DLB's
    /// asynchronous (helper thread + callback) mode.
    ///
    /// When a posted update is *cancelled* before being consumed (a steal or
    /// a lend revoked it), a corrective update carrying the process's
    /// unchanged current mask is sent, so the last message on the channel
    /// always names the mask the process will actually run with.
    pub fn subscribe(&self, pid: Pid) -> Receiver<MaskUpdate> {
        let (tx, rx) = unbounded();
        self.inner.lock().subscribers.insert(pid, tx);
        rx
    }

    /// Removes the asynchronous subscriber of `pid`, if any.
    pub fn unsubscribe(&self, pid: Pid) {
        self.inner.lock().subscribers.remove(&pid);
    }

    // ------------------------------------------------------------------
    // LeWI idle pool (lend when idle)
    // ------------------------------------------------------------------

    /// Lends `cpus` from `pid`'s current mask to the node idle pool.
    ///
    /// Returns the CPUs actually lent (the intersection of the request with
    /// the process's current mask).
    pub fn lend_cpus(&self, pid: Pid, cpus: &CpuSet) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        let idx = *inner
            .index
            .get(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        let (lendable, cancelled_pending) = self.with_payload(idx, |slot, p| {
            let lendable = p.current_mask.intersection(cpus);
            p.current_mask = p.current_mask.difference(&lendable);
            // A pending (administrator) mask must stay consistent with what
            // the process just gave away, otherwise applying it later would
            // hand the lent CPUs to two owners at once. If the lend swallows
            // the whole pending mask, the update is cancelled outright —
            // posting an empty mask would starve the process at its next
            // poll, which the registry refuses everywhere else.
            let mut cancelled = false;
            if let Some(pending) = p.pending_mask.as_mut() {
                *pending = pending.difference(&lendable);
                if pending.is_empty() {
                    p.pending_mask = None;
                    cancelled = true;
                }
            }
            slot.sync_pending_stamp(p);
            (lendable, cancelled)
        });
        inner.idle_pool = inner.idle_pool.union(&lendable);
        inner.stats.cpus_lent += lendable.count() as u64;
        if cancelled_pending {
            // Subscribers heard the now-cancelled update; correct them with
            // the (post-lend) current mask.
            let current = self.with_payload(idx, |_, p| p.current_mask.clone());
            Self::notify(&inner, &MaskUpdate { pid, mask: current });
        }
        drop(inner);
        if cancelled_pending {
            // Wake synchronous setters: their update was consumed by the lend.
            self.consumed.notify_all();
        }
        Ok(lendable)
    }

    /// Borrows up to `max_cpus` CPUs from the idle pool for `pid`.
    ///
    /// Returns the borrowed CPUs (possibly empty when the pool is dry).
    pub fn borrow_cpus(&self, pid: Pid, max_cpus: usize) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        let idx = *inner
            .index
            .get(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        let borrowed = inner.idle_pool.truncated(max_cpus);
        inner.idle_pool = inner.idle_pool.difference(&borrowed);
        self.with_payload(idx, |slot, p| {
            p.current_mask = p.current_mask.union(&borrowed);
            // Keep any pending mask consistent so the borrowed CPUs are not
            // lost when the pending update is applied.
            if let Some(pending) = p.pending_mask.as_mut() {
                *pending = pending.union(&borrowed);
            }
            slot.sync_pending_stamp(p);
        });
        inner.stats.cpus_borrowed += borrowed.count() as u64;
        Ok(borrowed)
    }

    /// Reclaims the CPUs `pid` originally owns: CPUs sitting in the idle pool
    /// return immediately; CPUs currently borrowed by other processes get a
    /// pending shrink posted to the borrower.
    ///
    /// Returns the CPUs immediately recovered.
    pub fn reclaim_cpus(&self, pid: Pid) -> Result<CpuSet, ShmemError> {
        let mut inner = self.inner.lock();
        let idx = *inner
            .index
            .get(&pid)
            .ok_or(ShmemError::ProcessNotFound { pid })?;
        let (owned, effective) = self.with_payload(idx, |_, p| {
            (p.owned_cpus.clone(), p.effective_mask().clone())
        });
        let missing = owned.difference(&effective);
        if missing.is_empty() {
            return Ok(CpuSet::new());
        }
        // CPUs waiting in the idle pool come back straight away.
        let from_pool = inner.idle_pool.intersection(&missing);
        inner.idle_pool = inner.idle_pool.difference(&from_pool);
        // CPUs held by borrowers get a pending shrink.
        let from_borrowers = missing.difference(&from_pool);
        if !from_borrowers.is_empty() {
            for (bpid, bidx) in sorted_index(&inner) {
                if bpid == pid {
                    continue;
                }
                let update = self.with_payload(bidx, |bslot, bp| {
                    if bp.state == ProcessState::Finished {
                        return None;
                    }
                    let overlap = bp.effective_mask().intersection(&from_borrowers);
                    if overlap.is_empty() {
                        return None;
                    }
                    let shrunk = bp.effective_mask().difference(&overlap);
                    bp.pending_mask = Some(shrunk.clone());
                    bslot.sync_pending_stamp(bp);
                    Some(MaskUpdate {
                        pid: bpid,
                        mask: shrunk,
                    })
                });
                if let Some(update) = update {
                    Self::notify(&inner, &update);
                }
            }
        }
        if !from_pool.is_empty() {
            self.with_payload(idx, |slot, p| {
                let grown = p.effective_mask().union(&from_pool);
                p.pending_mask = Some(grown);
                slot.sync_pending_stamp(p);
            });
        }
        inner.stats.cpus_reclaimed += missing.count() as u64;
        Ok(from_pool)
    }

    /// CPUs currently sitting in the LeWI idle pool.
    pub fn idle_pool(&self) -> CpuSet {
        self.inner.lock().idle_pool.clone()
    }

    /// Model-check epilogue invariant: every slot's stamp agrees with its
    /// payload — packed pid matches, pending parity matches
    /// `pending_mask.is_some()`, and empty slots read zero. Only meaningful
    /// once all protocol threads have been joined.
    #[cfg(drom_verify)]
    pub fn debug_stamp_consistency(&self) -> Result<(), String> {
        for (idx, slot) in self.slots.iter().enumerate() {
            let stamp = slot.stamp.load(Ordering::Acquire);
            let guard = slot.payload.lock();
            match guard.as_ref() {
                None => {
                    if stamp != 0 {
                        return Err(format!("slot {idx}: empty payload but stamp {stamp:#x}"));
                    }
                }
                Some(p) => {
                    if stamp_pid(stamp) != Some(p.pid) {
                        return Err(format!(
                            "slot {idx}: stamp pid {:?} != payload pid {}",
                            stamp_pid(stamp),
                            p.pid
                        ));
                    }
                    if stamp_pending(stamp) != p.pending_mask.is_some() {
                        return Err(format!(
                            "slot {idx} (pid {}): stamp parity says pending={}, payload says {}",
                            p.pid,
                            stamp_pending(stamp),
                            p.pending_mask.is_some()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask() -> CpuSet {
        CpuSet::first_n(16)
    }

    #[test]
    fn stamp_packing_roundtrip() {
        assert_eq!(stamp_pid(0), None);
        for pid in [0u32, 1, 42, u32::MAX] {
            let stamp = stamp_pack(pid, 0);
            assert_eq!(stamp_pid(stamp), Some(pid));
            assert!(!stamp_pending(stamp));
            let bumped = stamp_bump(stamp);
            assert_eq!(stamp_pid(bumped), Some(pid));
            assert!(stamp_pending(bumped));
            assert_eq!(stamp_pid(stamp_bump(bumped)), Some(pid));
            assert!(!stamp_pending(stamp_bump(bumped)));
        }
        // Generation wrap stays inside the gen field.
        let near_wrap = stamp_pack(7, GEN_MASK);
        assert_eq!(stamp_pid(near_wrap), Some(7));
        let wrapped = stamp_bump(near_wrap);
        assert_eq!(stamp_pid(wrapped), Some(7));
        assert!(!stamp_pending(wrapped));
    }

    #[test]
    fn register_and_query() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert_eq!(shmem.pid_list(), vec![10]);
        assert_eq!(shmem.current_mask(10).unwrap(), full_mask());
        assert_eq!(shmem.process_state(10).unwrap(), ProcessState::Active);
        assert!(!shmem.has_pending(10).unwrap());
        assert_eq!(shmem.stats().registers, 1);
    }

    #[test]
    fn register_twice_fails() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        assert_eq!(
            shmem.register(10, CpuSet::from_range(8..16).unwrap()),
            Err(ShmemError::AlreadyRegistered { pid: 10 })
        );
    }

    #[test]
    fn register_conflicting_mask_fails() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        let err = shmem
            .register(11, CpuSet::from_range(4..12).unwrap())
            .unwrap_err();
        assert!(matches!(err, ShmemError::CpuConflict { owner: 10, .. }));
    }

    #[test]
    fn register_invalid_masks() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(
            shmem.register(1, CpuSet::new()),
            Err(ShmemError::EmptyMask { pid: 1 })
        );
        assert_eq!(
            shmem.register(1, CpuSet::from_cpus([20]).unwrap()),
            Err(ShmemError::CpuOutOfNode {
                cpu: 20,
                node_cpus: 16
            })
        );
    }

    #[test]
    fn pending_mask_applied_on_poll() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let outcome = shmem
            .set_pending_mask(10, CpuSet::from_range(0..8).unwrap(), false)
            .unwrap();
        assert!(outcome.updated);
        assert!(outcome.victims.is_empty());
        assert!(shmem.has_pending(10).unwrap());
        // Current mask unchanged until the process polls.
        assert_eq!(shmem.current_mask(10).unwrap(), full_mask());
        let new = shmem.poll(10).unwrap().unwrap();
        assert_eq!(new, CpuSet::from_range(0..8).unwrap());
        assert_eq!(shmem.current_mask(10).unwrap(), new);
        assert!(!shmem.has_pending(10).unwrap());
        // Second poll finds nothing.
        assert_eq!(shmem.poll(10).unwrap(), None);
        let stats = shmem.stats();
        assert_eq!(stats.polls, 2);
        assert_eq!(stats.poll_updates, 1);
    }

    #[test]
    fn set_same_mask_is_noupdate() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let outcome = shmem.set_pending_mask(10, full_mask(), false).unwrap();
        assert!(!outcome.updated);
        assert!(!shmem.has_pending(10).unwrap());
        // The no-op is judged against the effective mask and accepted
        // without posting anything: no mask_sets recorded.
        assert_eq!(shmem.stats().mask_sets, 0);
    }

    #[test]
    fn second_pending_before_poll_is_pdirty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..8).unwrap(), false)
            .unwrap();
        let err = shmem
            .set_pending_mask(10, CpuSet::from_range(0..4).unwrap(), false)
            .unwrap_err();
        assert_eq!(err, ShmemError::PendingMaskNotConsumed { pid: 10 });
    }

    #[test]
    fn set_mask_unknown_pid() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(
            shmem.set_pending_mask(99, full_mask(), false),
            Err(ShmemError::ProcessNotFound { pid: 99 })
        );
        assert_eq!(shmem.poll(99), Err(ShmemError::ProcessNotFound { pid: 99 }));
    }

    #[test]
    fn grow_mask_requires_free_or_steal() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(8..16).unwrap())
            .unwrap();
        // Growing pid 10 into pid 11's CPUs without steal fails.
        let err = shmem
            .set_pending_mask(10, CpuSet::from_range(0..12).unwrap(), false)
            .unwrap_err();
        assert!(matches!(err, ShmemError::CpuConflict { owner: 11, .. }));
        // With steal it succeeds and pid 11 is shrunk.
        let outcome = shmem
            .set_pending_mask(10, CpuSet::from_range(0..12).unwrap(), true)
            .unwrap();
        assert!(outcome.updated);
        assert_eq!(outcome.victims.len(), 1);
        assert_eq!(outcome.victims[0].pid, 11);
        assert_eq!(outcome.victims[0].mask, CpuSet::from_range(12..16).unwrap());
        // The victim applies the shrink at its next poll.
        assert_eq!(
            shmem.poll(11).unwrap().unwrap(),
            CpuSet::from_range(12..16).unwrap()
        );
    }

    #[test]
    fn steal_never_leaves_victim_empty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(8..16).unwrap())
            .unwrap();
        // Stealing *all* of pid 11's CPUs must be refused.
        let err = shmem
            .set_pending_mask(10, CpuSet::first_n(16), true)
            .unwrap_err();
        assert_eq!(err, ShmemError::EmptyMask { pid: 11 });
    }

    #[test]
    fn failed_steal_is_all_or_nothing() {
        let shmem = NodeShmem::new("n1", 16);
        // Three processes; a steal that would survive on the first victim but
        // empty the second must leave *both* untouched.
        shmem
            .register(10, CpuSet::from_range(0..6).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(6..8).unwrap())
            .unwrap();
        shmem
            .register(12, CpuSet::from_range(8..16).unwrap())
            .unwrap();
        let before = shmem.entries();

        // Growing pid 12 over CPUs 4..8 shrinks pid 10 to 0..4 (fine) but
        // would leave pid 11 empty.
        let err = shmem
            .set_pending_mask(12, CpuSet::from_range(4..16).unwrap(), true)
            .unwrap_err();
        assert_eq!(err, ShmemError::EmptyMask { pid: 11 });
        assert_eq!(
            shmem.entries(),
            before,
            "failed steal must not mutate any entry"
        );
        assert!(!shmem.has_pending(10).unwrap());
        assert!(!shmem.has_pending(12).unwrap());

        // Same property through the pre-registration path.
        let err = shmem
            .preregister(20, CpuSet::from_range(4..8).unwrap(), true)
            .unwrap_err();
        assert_eq!(err, ShmemError::EmptyMask { pid: 11 });
        assert_eq!(shmem.entries(), before);
        assert_eq!(shmem.stats().steals, 0);
    }

    #[test]
    fn steal_composes_with_victims_pending() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(12..16).unwrap())
            .unwrap();
        // Pid 10 has an unconsumed pending grow onto CPU 8.
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..9).unwrap(), false)
            .unwrap();
        // A steal of CPU 5 composes against the *effective* mask: the posted
        // grow (CPU 8) survives, only the stolen CPU is removed.
        let victims = shmem
            .preregister(20, CpuSet::from_cpus([5]).unwrap(), true)
            .unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].pid, 10);
        let expected = CpuSet::from_range(0..9)
            .unwrap()
            .difference(&CpuSet::from_cpus([5]).unwrap());
        assert_eq!(victims[0].mask, expected);
        assert_eq!(
            shmem.entry(10).unwrap().pending_mask,
            Some(expected.clone())
        );
        assert_eq!(shmem.poll(10).unwrap().unwrap(), expected);
    }

    #[test]
    fn steal_cancels_pending_when_composition_equals_current() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        // Pending grow onto exactly CPU 8...
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..9).unwrap(), false)
            .unwrap();
        assert!(shmem.has_pending(10).unwrap());
        // ...and a steal of exactly CPU 8 revokes the not-yet-consumed grow:
        // the pending update is cancelled, not replaced by a no-op.
        let victims = shmem
            .preregister(20, CpuSet::from_cpus([8]).unwrap(), true)
            .unwrap();
        assert!(
            victims.is_empty(),
            "a cancelled update is not a posted shrink"
        );
        assert!(!shmem.has_pending(10).unwrap());
        assert_eq!(shmem.entry(10).unwrap().pending_mask, None);
        assert_eq!(shmem.poll(10).unwrap(), None);
        assert_eq!(
            shmem.current_mask(10).unwrap(),
            CpuSet::from_range(0..8).unwrap()
        );
    }

    #[test]
    fn cancelled_pending_sends_corrective_notification() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        let rx = shmem.subscribe(10);
        // Grow posted (and heard by the subscriber)...
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..9).unwrap(), false)
            .unwrap();
        assert_eq!(
            rx.try_recv().unwrap().mask,
            CpuSet::from_range(0..9).unwrap()
        );
        // ...then revoked by a steal of the granted CPU: the subscriber is
        // told the current mask is authoritative again.
        shmem
            .preregister(20, CpuSet::from_cpus([8]).unwrap(), true)
            .unwrap();
        let correction = rx.try_recv().unwrap();
        assert_eq!(correction.pid, 10);
        assert_eq!(correction.mask, CpuSet::from_range(0..8).unwrap());
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn cancelling_steal_wakes_synchronous_setter() {
        use std::sync::Arc;
        let shmem = Arc::new(NodeShmem::new("n1", 16));
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        let setter = {
            let shmem = Arc::clone(&shmem);
            std::thread::spawn(move || {
                shmem.set_pending_mask_sync(
                    10,
                    CpuSet::from_range(0..9).unwrap(),
                    false,
                    Duration::from_secs(5),
                )
            })
        };
        // Wait for the pending grow to be posted, then revoke CPU 8.
        while !shmem.has_pending(10).unwrap() {
            std::thread::sleep(Duration::from_millis(1));
        }
        shmem
            .preregister(20, CpuSet::from_cpus([8]).unwrap(), true)
            .unwrap();
        // The setter returns promptly: nothing is left to consume.
        let outcome = setter.join().unwrap().unwrap();
        assert!(outcome.updated);
        assert!(!shmem.has_pending(10).unwrap());
    }

    #[test]
    fn unregister_wakes_synchronous_setter() {
        use std::sync::Arc;
        let shmem = Arc::new(NodeShmem::new("n1", 16));
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        let setter = {
            let shmem = Arc::clone(&shmem);
            std::thread::spawn(move || {
                shmem.set_pending_mask_sync(
                    10,
                    CpuSet::from_range(0..4).unwrap(),
                    false,
                    Duration::from_secs(5),
                )
            })
        };
        while !shmem.has_pending(10).unwrap() {
            std::thread::sleep(Duration::from_millis(1));
        }
        shmem.unregister(10).unwrap();
        // The target is gone; the setter observes that instead of timing out.
        let outcome = setter.join().unwrap().unwrap();
        assert!(outcome.updated);
    }

    #[test]
    fn preregister_then_register_adopts_mask() {
        let shmem = NodeShmem::new("n1", 16);
        // Running job owns the whole node.
        shmem.register(10, full_mask()).unwrap();
        // Administrator pre-inits a new process on CPUs 8-15, stealing them.
        let victims = shmem
            .preregister(20, CpuSet::from_range(8..16).unwrap(), true)
            .unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].pid, 10);
        assert_eq!(victims[0].mask, CpuSet::from_range(0..8).unwrap());
        assert_eq!(
            shmem.process_state(20).unwrap(),
            ProcessState::PreRegistered
        );
        // The new process starts and registers: it adopts the reserved mask.
        let adopted = shmem.register(20, CpuSet::first_n(1)).unwrap();
        assert_eq!(adopted, CpuSet::from_range(8..16).unwrap());
        assert_eq!(shmem.process_state(20).unwrap(), ProcessState::Active);
        // The victim shrinks at its next poll.
        assert_eq!(
            shmem.poll(10).unwrap().unwrap(),
            CpuSet::from_range(0..8).unwrap()
        );
    }

    #[test]
    fn preregister_without_steal_on_conflict_fails() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let err = shmem
            .preregister(20, CpuSet::from_range(8..16).unwrap(), false)
            .unwrap_err();
        assert!(matches!(err, ShmemError::CpuConflict { owner: 10, .. }));
    }

    #[test]
    fn unregister_returns_cpus_to_owner() {
        let shmem = NodeShmem::new("n1", 16);
        // pid 10 owns all 16 CPUs.
        shmem.register(10, full_mask()).unwrap();
        // pid 20 pre-inits on half of them (stealing).
        shmem
            .preregister(20, CpuSet::from_range(8..16).unwrap(), true)
            .unwrap();
        shmem.register(20, CpuSet::new()).unwrap();
        shmem.poll(10).unwrap(); // pid 10 shrinks to 0-7
                                 // pid 20 finishes: its CPUs go back to pid 10 (the original owner).
        let updates = shmem.unregister(20).unwrap();
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].pid, 10);
        assert_eq!(updates[0].mask, full_mask());
        assert_eq!(shmem.poll(10).unwrap().unwrap(), full_mask());
    }

    #[test]
    fn unregister_unknown_pid_fails() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(
            shmem.unregister(5),
            Err(ShmemError::ProcessNotFound { pid: 5 })
        );
    }

    #[test]
    fn free_cpus_accounts_for_pending() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert!(shmem.free_cpus().is_empty());
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..8).unwrap(), false)
            .unwrap();
        // Even before the poll the effective view frees CPUs 8-15.
        assert_eq!(shmem.free_cpus(), CpuSet::from_range(8..16).unwrap());
    }

    #[test]
    fn attach_detach_counting() {
        let shmem = NodeShmem::new("n1", 16);
        assert_eq!(shmem.detach(), Err(ShmemError::NotAttached));
        shmem.attach();
        shmem.attach();
        assert_eq!(shmem.attachments(), 2);
        shmem.detach().unwrap();
        shmem.detach().unwrap();
        assert_eq!(shmem.detach(), Err(ShmemError::NotAttached));
    }

    #[test]
    fn subscriber_receives_updates() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let rx = shmem.subscribe(10);
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..4).unwrap(), false)
            .unwrap();
        let update = rx.try_recv().unwrap();
        assert_eq!(update.pid, 10);
        assert_eq!(update.mask, CpuSet::from_range(0..4).unwrap());
        shmem.unsubscribe(10);
        shmem.poll(10).unwrap();
        shmem
            .set_pending_mask(10, CpuSet::from_range(0..2).unwrap(), false)
            .unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn sync_set_mask_times_out_without_poll() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        let err = shmem
            .set_pending_mask_sync(
                10,
                CpuSet::from_range(0..8).unwrap(),
                false,
                Duration::from_millis(20),
            )
            .unwrap_err();
        assert_eq!(err, ShmemError::Timeout { pid: 10 });
    }

    #[test]
    fn sync_set_mask_completes_when_polled() {
        use std::sync::Arc;
        let shmem = Arc::new(NodeShmem::new("n1", 16));
        shmem.register(10, full_mask()).unwrap();
        let poller = {
            let shmem = Arc::clone(&shmem);
            std::thread::spawn(move || {
                // Poll until the update arrives.
                loop {
                    if shmem.poll(10).unwrap().is_some() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let outcome = shmem
            .set_pending_mask_sync(
                10,
                CpuSet::from_range(0..8).unwrap(),
                false,
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(outcome.updated);
        poller.join().unwrap();
        assert_eq!(
            shmem.current_mask(10).unwrap(),
            CpuSet::from_range(0..8).unwrap()
        );
    }

    #[test]
    fn lend_and_borrow_cycle() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(8..16).unwrap())
            .unwrap();
        // pid 10 lends its upper 4 CPUs to the idle pool.
        let lent = shmem
            .lend_cpus(10, &CpuSet::from_range(4..8).unwrap())
            .unwrap();
        assert_eq!(lent.count(), 4);
        assert_eq!(shmem.idle_pool().count(), 4);
        assert_eq!(shmem.current_mask(10).unwrap().count(), 4);
        // pid 11 borrows two of them.
        let borrowed = shmem.borrow_cpus(11, 2).unwrap();
        assert_eq!(borrowed.count(), 2);
        assert_eq!(shmem.idle_pool().count(), 2);
        assert_eq!(shmem.current_mask(11).unwrap().count(), 10);
        // Owner reclaims: the two CPUs still in the pool return immediately
        // (posted as a pending grow to pid 10); the two borrowed ones are
        // posted as a pending shrink to pid 11.
        let recovered = shmem.reclaim_cpus(10).unwrap();
        assert_eq!(recovered.count(), 2);
        assert!(shmem.idle_pool().is_empty());
        assert!(shmem.has_pending(10).unwrap());
        assert!(shmem.has_pending(11).unwrap());
        assert_eq!(shmem.poll(10).unwrap().unwrap().count(), 6);
        assert_eq!(shmem.poll(11).unwrap().unwrap().count(), 8);
        let stats = shmem.stats();
        assert_eq!(stats.cpus_lent, 4);
        assert_eq!(stats.cpus_borrowed, 2);
        assert_eq!(stats.cpus_reclaimed, 4);
    }

    #[test]
    fn lend_swallowing_pending_cancels_it() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..2).unwrap())
            .unwrap();
        // Admin posts a shrink to CPU 0 only...
        shmem
            .set_pending_mask(10, CpuSet::from_cpus([0]).unwrap(), false)
            .unwrap();
        // ...then the process lends both its CPUs away: the pending mask
        // would become empty, so it is cancelled instead of starving the
        // process at its next poll.
        let lent = shmem
            .lend_cpus(10, &CpuSet::from_range(0..2).unwrap())
            .unwrap();
        assert_eq!(lent.count(), 2);
        assert!(!shmem.has_pending(10).unwrap());
        assert_eq!(shmem.poll(10).unwrap(), None);
        assert!(shmem.current_mask(10).unwrap().is_empty());
        // The owner recovers its CPUs from the pool as usual.
        let recovered = shmem.reclaim_cpus(10).unwrap();
        assert_eq!(recovered.count(), 2);
        assert_eq!(shmem.poll(10).unwrap().unwrap().count(), 2);
    }

    #[test]
    fn lend_only_own_cpus() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        let lent = shmem
            .lend_cpus(10, &CpuSet::from_range(4..12).unwrap())
            .unwrap();
        assert_eq!(lent, CpuSet::from_range(4..8).unwrap());
    }

    #[test]
    fn borrow_from_empty_pool_is_empty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert!(shmem.borrow_cpus(10, 4).unwrap().is_empty());
    }

    #[test]
    fn reclaim_with_nothing_missing_is_empty() {
        let shmem = NodeShmem::new("n1", 16);
        shmem.register(10, full_mask()).unwrap();
        assert!(shmem.reclaim_cpus(10).unwrap().is_empty());
        assert!(!shmem.has_pending(10).unwrap());
    }

    #[test]
    fn node_full_when_table_exhausted() {
        // node_cpus = 1 gives the minimum table of 4 slots; finished entries
        // keep their slot until PostFinalize, so a 5th registration fails.
        let shmem = NodeShmem::new("n1", 1);
        assert_eq!(shmem.slot_capacity(), 4);
        for pid in 1..=4 {
            shmem.register(pid, CpuSet::first_n(1)).unwrap();
            shmem.mark_finished(pid).unwrap();
        }
        let before = shmem.entries();
        assert_eq!(
            shmem.register(5, CpuSet::first_n(1)),
            Err(ShmemError::NodeFull {
                pid: 5,
                capacity: 4
            })
        );
        assert_eq!(shmem.entries(), before);
        // Finalizing one frees its slot again.
        shmem.unregister(1).unwrap();
        shmem.register(5, CpuSet::first_n(1)).unwrap();
    }

    #[test]
    fn slot_hints_poll_and_survive_reregistration() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(8..16).unwrap())
            .unwrap();
        let hint = shmem.slot_hint(11).unwrap();
        assert_eq!(shmem.poll_hinted(hint, 11).unwrap(), None);
        assert!(!shmem.has_pending_hinted(hint, 11).unwrap());
        shmem
            .set_pending_mask(11, CpuSet::from_range(8..12).unwrap(), false)
            .unwrap();
        assert!(shmem.has_pending_hinted(hint, 11).unwrap());
        assert_eq!(
            shmem.poll_hinted(hint, 11).unwrap().unwrap(),
            CpuSet::from_range(8..12).unwrap()
        );
        // Unregister, let another pid take the slot, re-register elsewhere:
        // the stale hint transparently falls back to the scanning path.
        shmem.unregister(11).unwrap();
        shmem
            .register(12, CpuSet::from_range(12..16).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(8..12).unwrap())
            .unwrap();
        assert_eq!(shmem.poll_hinted(hint, 11).unwrap(), None);
        assert!(!shmem.has_pending_hinted(hint, 11).unwrap());
        // A hint for a gone pid errors.
        shmem.unregister(11).unwrap();
        assert_eq!(
            shmem.poll_hinted(hint, 11),
            Err(ShmemError::ProcessNotFound { pid: 11 })
        );
    }

    #[test]
    fn entries_snapshot_includes_finished() {
        let shmem = NodeShmem::new("n1", 16);
        shmem
            .register(10, CpuSet::from_range(0..8).unwrap())
            .unwrap();
        shmem
            .register(11, CpuSet::from_range(8..16).unwrap())
            .unwrap();
        shmem.mark_finished(11).unwrap();
        let entries = shmem.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].pid, 10);
        assert_eq!(entries[1].pid, 11);
        assert_eq!(entries[1].state, ProcessState::Finished);
        assert_eq!(
            shmem.pid_list(),
            vec![10],
            "pid_list hides finished entries"
        );
    }
}
