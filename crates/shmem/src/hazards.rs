//! Seeded protocol mutants for the model-check mutation tests (only compiled
//! under `--cfg drom_verify`; see `docs/verification.md`).
//!
//! Each knob weakens one load-bearing piece of the registry protocol — a
//! memory ordering or a handshake step. The mutation tests in
//! `tests/model_check.rs` flip a knob and assert that the model checker
//! reports a concrete failing interleaving; with all knobs off the same
//! tests prove the real protocol correct. Runtime knobs (rather than cfg'd
//! code variants) keep every mutant in one test binary.
//!
//! The knobs are process-global: tests that use them serialize through a
//! common mutex and reset them when done (`HazardGuard` in the test file).

use std::sync::atomic::{AtomicBool, Ordering};

/// `insert_entry` publishes the occupied slot stamp with `Relaxed` instead
/// of `Release`: observing the new entry no longer proves the victims'
/// pending shrinks (posted earlier in the same steal) are visible.
pub static PUBLISH_STAMP_RELAXED: AtomicBool = AtomicBool::new(false);

/// `find_slot` scans stamps with `Relaxed` instead of `Acquire`: the scan
/// no longer synchronizes with the publishing store, severing the same
/// publication chain from the reader side.
pub static FIND_SLOT_RELAXED: AtomicBool = AtomicBool::new(false);

/// `poll_slot` skips the pass through `inner` before signalling `consumed`:
/// a synchronous setter that checked the stamp just before can miss the
/// wakeup and sleep forever.
pub static SKIP_CONSUME_HANDSHAKE: AtomicBool = AtomicBool::new(false);

/// `sync_pending_stamp` bumps the stamp unconditionally instead of only on
/// parity mismatch: a pending-preserving operation (e.g. a partial lend)
/// flips the stamp to "consumed" while a mask is still pending.
pub static UNCONDITIONAL_STAMP_BUMP: AtomicBool = AtomicBool::new(false);

/// `steal_cpus` phase 2 reuses the cancel-vs-post decision computed in phase
/// 1 instead of re-deciding on the live payload under the slot lock: a poll
/// racing between the phases makes it drop the victim's shrink entirely.
pub static STALE_STEAL_DECISION: AtomicBool = AtomicBool::new(false);

/// `steal_cpus` applies each victim's shrink while still validating the rest
/// instead of in a separate second phase: a failed steal is no longer
/// all-or-nothing.
pub static EAGER_STEAL_APPLY: AtomicBool = AtomicBool::new(false);

/// Reads a knob.
/// (The knobs are test-control state, not part of the modeled protocol, so
/// they use real `std` atomics.)
pub fn on(knob: &AtomicBool) -> bool {
    // SAFETY(ordering): test-control flag set before the checker spawns any
    // model thread; never raced with the modeled protocol.
    knob.load(Ordering::Relaxed)
}

/// Switches every knob off.
pub fn reset() {
    for knob in [
        &PUBLISH_STAMP_RELAXED,
        &FIND_SLOT_RELAXED,
        &SKIP_CONSUME_HANDSHAKE,
        &UNCONDITIONAL_STAMP_BUMP,
        &STALE_STEAL_DECISION,
        &EAGER_STEAL_APPLY,
    ] {
        // SAFETY(ordering): test-control flag, as above.
        knob.store(false, Ordering::Relaxed);
    }
}
