//! Errors returned by the shared-memory registry.
//!
//! These map closely onto the DLB error codes that the original DROM API
//! returns (`DLB_ERR_NOPROC`, `DLB_ERR_PDIRTY`, `DLB_ERR_PERM`,
//! `DLB_ERR_TIMEOUT`, …); `drom-core` converts them into its public
//! [`DromError`](https://docs.rs/) equivalents.

use std::fmt;

use crate::registry::Pid;

/// Errors produced by [`NodeShmem`](crate::NodeShmem) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmemError {
    /// The target process is not registered in this node's shared memory
    /// (`DLB_ERR_NOPROC`).
    ProcessNotFound {
        /// The pid that was looked up.
        pid: Pid,
    },
    /// A process with this pid is already registered (`DLB_ERR_INIT`).
    AlreadyRegistered {
        /// The pid that was registered twice.
        pid: Pid,
    },
    /// The process still has a pending mask that it has not consumed yet
    /// (`DLB_ERR_PDIRTY`). The administrator must wait (or use the synchronous
    /// flag) before posting another update.
    PendingMaskNotConsumed {
        /// The pid with an unconsumed pending mask.
        pid: Pid,
    },
    /// The requested mask would take CPUs owned by another active process and
    /// stealing was not requested (`DLB_ERR_PERM`).
    CpuConflict {
        /// One of the conflicting CPUs.
        cpu: usize,
        /// The pid currently owning that CPU.
        owner: Pid,
    },
    /// The requested mask contains CPUs that do not exist on this node.
    CpuOutOfNode {
        /// The offending CPU.
        cpu: usize,
        /// Number of CPUs in the node.
        node_cpus: usize,
    },
    /// A synchronous operation timed out waiting for the target process to
    /// reach a malleability point (`DLB_ERR_TIMEOUT`).
    Timeout {
        /// The pid that failed to respond in time.
        pid: Pid,
    },
    /// The requested mask was empty but the operation requires at least one CPU.
    EmptyMask {
        /// The pid the empty mask was destined for.
        pid: Pid,
    },
    /// The node's fixed-size process table has no free slot left
    /// (`DLB_ERR_NOMEM`: the request does not fit the shared-memory segment).
    NodeFull {
        /// The pid that could not be registered.
        pid: Pid,
        /// Capacity of the node's process table.
        capacity: usize,
    },
    /// The caller is not attached to the shared memory (`DLB_ERR_NOINIT`).
    NotAttached,
}

impl fmt::Display for ShmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmemError::ProcessNotFound { pid } => write!(f, "process {pid} not registered"),
            ShmemError::AlreadyRegistered { pid } => {
                write!(f, "process {pid} already registered")
            }
            ShmemError::PendingMaskNotConsumed { pid } => {
                write!(f, "process {pid} has an unconsumed pending mask")
            }
            ShmemError::CpuConflict { cpu, owner } => {
                write!(f, "cpu {cpu} is owned by process {owner}")
            }
            ShmemError::CpuOutOfNode { cpu, node_cpus } => {
                write!(f, "cpu {cpu} outside node (node has {node_cpus} cpus)")
            }
            ShmemError::Timeout { pid } => {
                write!(f, "timed out waiting for process {pid} to consume its mask")
            }
            ShmemError::EmptyMask { pid } => {
                write!(f, "refusing to assign an empty mask to process {pid}")
            }
            ShmemError::NodeFull { pid, capacity } => write!(
                f,
                "no free slot for process {pid} (node table holds {capacity} processes)"
            ),
            ShmemError::NotAttached => write!(f, "caller is not attached to the DROM shmem"),
        }
    }
}

impl std::error::Error for ShmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_pid() {
        let variants: Vec<(ShmemError, &str)> = vec![
            (ShmemError::ProcessNotFound { pid: 42 }, "42"),
            (ShmemError::AlreadyRegistered { pid: 7 }, "7"),
            (ShmemError::PendingMaskNotConsumed { pid: 9 }, "9"),
            (ShmemError::CpuConflict { cpu: 3, owner: 11 }, "11"),
            (
                ShmemError::CpuOutOfNode {
                    cpu: 99,
                    node_cpus: 16,
                },
                "99",
            ),
            (ShmemError::Timeout { pid: 5 }, "5"),
            (ShmemError::EmptyMask { pid: 6 }, "6"),
            (
                ShmemError::NodeFull {
                    pid: 8,
                    capacity: 32,
                },
                "8",
            ),
        ];
        for (err, needle) in variants {
            assert!(
                err.to_string().contains(needle),
                "{err:?} should mention {needle}"
            );
        }
        assert!(ShmemError::NotAttached.to_string().contains("attached"));
    }
}
