//! Counters describing the activity of a node's shared-memory registry.

use serde::{Deserialize, Serialize};

/// Cumulative statistics for one [`NodeShmem`](crate::NodeShmem).
///
/// These counters back the "collection of useful data from applications at run
/// time" that the paper lists as future work, and are also handy for the
/// overhead benchmarks (how many polls found no update, how often masks were
/// stolen, …).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShmemStats {
    /// Processes registered (including pre-registrations that became active).
    pub registers: u64,
    /// Pre-registrations performed by administrators (`DROM_PreInit`).
    pub preregisters: u64,
    /// Processes unregistered / finalized.
    pub unregisters: u64,
    /// Total `poll` calls.
    pub polls: u64,
    /// `poll` calls that returned a new mask.
    pub poll_updates: u64,
    /// Administrator mask updates accepted (`DROM_SetProcessMask`).
    pub mask_sets: u64,
    /// Mask updates that had to steal CPUs from other processes.
    pub steals: u64,
    /// CPUs lent to the node idle pool (LeWI).
    pub cpus_lent: u64,
    /// CPUs borrowed from the node idle pool (LeWI).
    pub cpus_borrowed: u64,
    /// CPUs reclaimed by their owners (LeWI).
    pub cpus_reclaimed: u64,
}

impl ShmemStats {
    /// Fraction of polls that observed a mask change, in `[0, 1]`.
    ///
    /// Returns 0 when no poll has happened yet.
    pub fn poll_hit_ratio(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.poll_updates as f64 / self.polls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let stats = ShmemStats::default();
        assert_eq!(stats.registers, 0);
        assert_eq!(stats.polls, 0);
        assert_eq!(stats.poll_hit_ratio(), 0.0);
    }

    #[test]
    fn poll_hit_ratio_computed() {
        let stats = ShmemStats {
            polls: 10,
            poll_updates: 3,
            ..Default::default()
        };
        assert!((stats.poll_hit_ratio() - 0.3).abs() < 1e-12);
    }
}
