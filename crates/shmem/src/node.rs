//! The cluster-wide map of per-node shared-memory segments.
//!
//! The original DLB creates one POSIX shared-memory segment per node, keyed by
//! the node's hostname (and the user's shmem key). [`ShmemManager`] plays the
//! same role for the simulated cluster: each node name maps to exactly one
//! [`NodeShmem`] and every component running "on" that node (applications,
//! slurmd, slurmstepd, user administrators) shares it.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::registry::NodeShmem;

/// Hands out the per-node shared-memory segments of a simulated cluster.
///
/// Cloning the manager is cheap and all clones observe the same segments, just
/// like every process of a node maps the same `shm` file.
#[derive(Clone, Default)]
pub struct ShmemManager {
    nodes: Arc<Mutex<HashMap<String, Arc<NodeShmem>>>>,
}

impl ShmemManager {
    /// Creates an empty manager (a cluster with no nodes yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the segment of `node`, creating it with `node_cpus` CPUs on
    /// first use.
    ///
    /// Subsequent calls with a different `node_cpus` return the existing
    /// segment unchanged (the node's size is fixed at creation, like real
    /// hardware).
    pub fn get_or_create(&self, node: &str, node_cpus: usize) -> Arc<NodeShmem> {
        let mut nodes = self.nodes.lock();
        Arc::clone(
            nodes
                .entry(node.to_string())
                .or_insert_with(|| Arc::new(NodeShmem::new(node, node_cpus))),
        )
    }

    /// Returns the segment of `node` if it exists.
    pub fn get(&self, node: &str) -> Option<Arc<NodeShmem>> {
        self.nodes.lock().get(node).cloned()
    }

    /// Removes the segment of `node`, returning it if it existed.
    ///
    /// Components still holding an `Arc` keep a functional segment; only the
    /// name is forgotten (the analogue of `shm_unlink`).
    pub fn remove(&self, node: &str) -> Option<Arc<NodeShmem>> {
        self.nodes.lock().remove(node)
    }

    /// Names of the nodes with a segment, sorted.
    pub fn node_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.nodes.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of nodes with a segment.
    pub fn len(&self) -> usize {
        self.nodes.lock().len()
    }

    /// `true` if no node has a segment yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drom_cpuset::CpuSet;

    #[test]
    fn get_or_create_is_idempotent() {
        let mgr = ShmemManager::new();
        assert!(mgr.is_empty());
        let a = mgr.get_or_create("node1", 16);
        let b = mgr.get_or_create("node1", 32);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.node_cpus(), 16, "size fixed at creation");
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn clones_share_segments() {
        let mgr = ShmemManager::new();
        let clone = mgr.clone();
        let seg = mgr.get_or_create("node1", 16);
        seg.register(1, CpuSet::first_n(4)).unwrap();
        let seen = clone.get("node1").expect("clone sees the segment");
        assert_eq!(seen.pid_list(), vec![1]);
    }

    #[test]
    fn node_names_sorted_and_remove() {
        let mgr = ShmemManager::new();
        mgr.get_or_create("node2", 16);
        mgr.get_or_create("node1", 16);
        assert_eq!(
            mgr.node_names(),
            vec!["node1".to_string(), "node2".to_string()]
        );
        assert!(mgr.remove("node1").is_some());
        assert!(mgr.remove("node1").is_none());
        assert_eq!(mgr.len(), 1);
        assert!(mgr.get("node1").is_none());
    }
}
