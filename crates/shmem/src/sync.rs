//! Synchronization-primitive facade for the registry protocol.
//!
//! The registry (`crate::registry`) imports its atomics, mutexes and condvars
//! from here instead of from `std`/`parking_lot` directly. In a normal build
//! these re-export the real primitives; under `--cfg drom_verify` they swap
//! to the recording shims of the `drom-verify` model checker, so the
//! model-check tests in `tests/model_check.rs` can exhaustively explore the
//! protocol's interleavings. Production code paths are byte-identical: the
//! cfg'd build is only ever produced by the model-check CI step.

#[cfg(not(drom_verify))]
pub use parking_lot::{Condvar, Mutex, MutexGuard};
#[cfg(not(drom_verify))]
pub use std::sync::atomic::AtomicU64;

#[cfg(drom_verify)]
pub use drom_verify::sync::{AtomicU64, Condvar, Mutex, MutexGuard};
