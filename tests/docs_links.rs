//! Markdown link checker: every relative link in the repository's *.md files
//! must point at a file or directory that exists. Run in CI on every PR so
//! documentation reorganisations cannot silently strand readers.

use std::path::{Path, PathBuf};

/// Collects the repository's markdown files: the root-level docs plus
/// everything under `docs/`.
fn markdown_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = std::fs::read_dir(root)
        .expect("repo root is readable")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    let docs = root.join("docs");
    if docs.is_dir() {
        files.extend(
            std::fs::read_dir(&docs)
                .expect("docs/ is readable")
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "md")),
        );
    }
    assert!(!files.is_empty(), "found no markdown files to check");
    files
}

/// Extracts `[text](target)` link targets from one line, ignoring images'
/// leading `!` (the target rules are the same). The terminating `)` is
/// matched with paren balancing, so a target containing parentheses — legal
/// in both paths and URLs — is extracted whole.
fn link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth == 0 {
                targets.push(line[start..j - 1].to_string());
                i = j;
                continue;
            }
        }
        i += 1;
    }
    targets
}

/// Blanks out `` `inline code` `` spans so `[idx](arg)`-shaped code is not
/// mistaken for a markdown link. An unpaired backtick leaves the rest of the
/// line untouched (matching how renderers treat it).
fn strip_inline_code(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        match rest[open + 1..].find('`') {
            Some(close) => {
                out.push_str(&rest[..open]);
                rest = &rest[open + 1 + close + 1..];
            }
            None => break,
        }
    }
    out.push_str(rest);
    out
}

#[test]
fn relative_markdown_links_resolve() {
    let mut broken = Vec::new();
    for file in markdown_files() {
        let content = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let mut in_code_block = false;
        for (lineno, line) in content.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code_block = !in_code_block;
                continue;
            }
            if in_code_block {
                continue;
            }
            for target in link_targets(&strip_inline_code(line)) {
                // External links, anchors and mailto are out of scope: the
                // checker guards the repo's own files only.
                if target.starts_with("http://")
                    || target.starts_with("https://")
                    || target.starts_with('#')
                    || target.starts_with("mailto:")
                    || target.is_empty()
                {
                    continue;
                }
                let path_part = target.split('#').next().unwrap_or(&target);
                let base = file.parent().expect("markdown files have a parent");
                if !base.join(path_part).exists() {
                    broken.push(format!(
                        "{}:{}: broken link -> {target}",
                        file.display(),
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative markdown links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn link_extractor_finds_targets() {
    assert_eq!(
        link_targets("see [a](x.md) and ![img](y.png#frag)"),
        vec!["x.md".to_string(), "y.png#frag".to_string()]
    );
    assert!(link_targets("no links here").is_empty());
    assert!(link_targets("half [a](unclosed").is_empty());
    // Parentheses inside a target are matched, not truncated.
    assert_eq!(
        link_targets("[spec](rfc(2).md) then [w](https://en.org/A_(b))"),
        vec!["rfc(2).md".to_string(), "https://en.org/A_(b)".to_string()]
    );
}

#[test]
fn inline_code_is_not_a_link() {
    assert_eq!(
        strip_inline_code("call `masks[0](mask)` then see [real](x.md)"),
        "call  then see [real](x.md)"
    );
    assert!(link_targets(&strip_inline_code("only `entries[pid](update)` here")).is_empty());
    // An unpaired backtick leaves the remainder intact.
    assert_eq!(strip_inline_code("a ` b"), "a ` b");
}
