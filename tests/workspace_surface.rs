//! Smoke test of the workspace surface: the `drom` facade must re-export every
//! layer under its documented name, and the README's quick-start sequence must
//! run end to end exactly as printed.

use std::sync::Arc;

// The four types the README and crate docs lead with, imported through the
// facade paths users are told to use.
use drom::core::{DromAdmin, DromFlags, DromProcess};
use drom::cpuset::CpuSet;
use drom::shmem::NodeShmem;

#[test]
fn facade_reexports_the_documented_modules() {
    // One representative symbol per re-exported layer; a missing or renamed
    // re-export turns into a compile error here, which is the point.
    let _ = drom::apps::AppKind::Nest;
    let _ = drom::metrics::Tracer::new();
    let _ = drom::mpisim::MpiWorld::new(1);
    let _ = drom::ompsim::Schedule::Static;
    let _ = drom::sim::Scenario::Serial;
    let _ = drom::slurm::JobState::Pending;

    let _cpuset: CpuSet = CpuSet::new();
    let _shmem: Arc<NodeShmem> = Arc::new(NodeShmem::new("probe", 4));
    let _flags: DromFlags = DromFlags::default();

    // The facade version string comes from the workspace manifest.
    assert!(!drom::VERSION.is_empty());
}

#[test]
fn readme_quick_start_runs_end_to_end() {
    // Keep in sync with README.md "Quick start" and the src/lib.rs doc-test.
    let shmem = Arc::new(NodeShmem::new("node0", 16));
    let app = DromProcess::init(42, CpuSet::first_n(16), Arc::clone(&shmem)).unwrap();

    let admin = DromAdmin::attach(Arc::clone(&shmem));
    admin
        .set_process_mask(42, &CpuSet::from_range(0..8).unwrap(), DromFlags::default())
        .unwrap();

    let update = app.poll_drom().unwrap().expect("an update must be pending");
    assert_eq!(update.count(), 8);

    // The applied mask is visible through the administrator view as well.
    let seen = admin.get_process_mask(42, DromFlags::default()).unwrap();
    assert_eq!(seen, CpuSet::from_range(0..8).unwrap());
}

#[test]
fn quick_start_masks_round_trip_through_parse() {
    // The quick-start masks render and re-parse canonically, tying the
    // facade's cpuset layer to the string form the examples print.
    let mask = CpuSet::from_range(0..8).unwrap();
    let rendered = drom::cpuset::format_cpu_list(&mask);
    let reparsed = drom::cpuset::parse_cpu_list(&rendered).expect("canonical form must re-parse");
    assert_eq!(reparsed, mask);
}
