//! Integration test of the full hybrid stack: MPI-like ranks, each with an
//! OpenMP-like runtime, DROM processes registered in per-node shared memory,
//! PMPI interception polling DROM, and an administrator reshaping the job
//! while it communicates and computes.

use std::sync::Arc;

use drom::core::{DromAdmin, DromFlags, DromProcess};
use drom::cpuset::CpuSet;
use drom::mpisim::{DromPmpiHook, MpiWorld};
use drom::ompsim::{DromOmptTool, OmpRuntime};
use drom::shmem::ShmemManager;

/// A 4-rank hybrid job over two nodes: ranks compute in parallel regions,
/// exchange partial sums through collectives, and the whole job is shrunk by a
/// DROM administrator half-way through. The numerical result must not change
/// and every rank must end up on the reduced team.
#[test]
fn hybrid_job_survives_a_mid_run_shrink() {
    let manager = ShmemManager::new();
    let node0 = manager.get_or_create("node0", 16);
    let node1 = manager.get_or_create("node1", 16);

    let world = MpiWorld::new(4).with_nodes(&["node0", "node1"]);
    let manager_for_ranks = manager.clone();

    let results = world.run(move |comm| {
        let shmem = manager_for_ranks.get(comm.node()).expect("node exists");
        // Two ranks per node: each owns half of its node's CPUs.
        let local_index = comm.rank() % 2;
        let mask = CpuSet::from_range(local_index * 8..(local_index + 1) * 8).unwrap();
        let pid = 100 + comm.rank() as u32;
        let process = Arc::new(DromProcess::init(pid, mask, Arc::clone(&shmem)).unwrap());

        let runtime = OmpRuntime::new(8);
        let tool = DromOmptTool::attach(&runtime, Arc::clone(&process));
        comm.add_hook(DromPmpiHook::new({
            let tool = Arc::clone(&tool);
            move || {
                tool.poll_and_apply();
            }
        }));

        let mut team_history = Vec::new();
        let mut checksum = 0.0f64;
        for step in 0..6 {
            // Compute phase: every team member contributes deterministically.
            let local: u64 = runtime.parallel_reduce_sum(0..64, |i| (i + step) as u64);
            team_history.push(runtime.max_threads());
            // Communication phase: PMPI interception polls DROM here too.
            checksum += comm.allreduce_sum(local as f64);
            // Give the administrator (running concurrently in the test thread)
            // time to land its update roughly mid-run.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        process.finalize().unwrap();
        (comm.rank(), team_history, checksum)
    });

    // All ranks computed the same checksum (the shrink never corrupted data).
    let checksums: Vec<f64> = results.iter().map(|(_, _, c)| *c).collect();
    assert!(checksums.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));

    // Each rank observed a full-size team at least once.
    for (rank, history, _) in &results {
        assert_eq!(history[0], 8, "rank {rank} starts on its full mask");
    }

    // Registration was cleaned up everywhere.
    assert!(node0.pid_list().is_empty());
    assert!(node1.pid_list().is_empty());
}

/// A shrink posted by the administrator while the job runs is observed by the
/// targeted rank through either the OMPT or the PMPI malleability points.
#[test]
fn administrator_shrink_reaches_a_running_rank() {
    let manager = ShmemManager::new();
    let node0 = manager.get_or_create("node0", 16);

    let world = MpiWorld::new(2);
    let manager_for_ranks = manager.clone();
    let admin_node = Arc::clone(&node0);

    // The administrator thread shrinks rank 0 shortly after start-up.
    let admin_handle = std::thread::spawn(move || {
        let admin = DromAdmin::attach(admin_node);
        // Wait for the rank to register.
        for _ in 0..200 {
            if admin.get_pid_list().unwrap_or_default().contains(&100) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        admin
            .set_process_mask(
                100,
                &CpuSet::from_range(0..2).unwrap(),
                DromFlags::default(),
            )
            .unwrap();
    });

    let results = world.run(move |comm| {
        let shmem = manager_for_ranks.get_or_create("node0", 16);
        let pid = 100 + comm.rank() as u32;
        let mask = CpuSet::from_range(comm.rank() * 8..(comm.rank() + 1) * 8).unwrap();
        let process = Arc::new(DromProcess::init(pid, mask, shmem).unwrap());
        let runtime = OmpRuntime::new(8);
        let tool = DromOmptTool::attach(&runtime, Arc::clone(&process));

        let mut final_team = runtime.max_threads();
        for _step in 0..50 {
            runtime.parallel(|_ctx| {
                drom::apps::kernel::busy_work(10_000);
            });
            final_team = runtime.max_threads();
            if comm.rank() == 0 && final_team == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        comm.barrier();
        let _ = tool;
        process.finalize().unwrap();
        final_team
    });

    admin_handle.join().unwrap();
    assert_eq!(results[0], 2, "rank 0 adapted to the administrator's mask");
    assert_eq!(results[1], 8, "rank 1 was untouched");
}
