//! The malleable scheduling policy driven end to end on the *real* execution
//! path: `PolicyScheduler` decisions are applied through `Srun`/`Slurmd`, so
//! every shrink travels the DROM pending-mask machinery and every expansion
//! rides `release_resources` — exactly the composition `docs/scheduling.md`
//! describes.

use std::sync::Arc;

use drom::core::DromProcess;
use drom::slurm::policy::{QueuedJob, SchedulerAction};
use drom::slurm::{Cluster, JobSpec, MalleablePolicy, PolicyScheduler, Srun};

/// Maps a policy-level allocation (node indices + per-node width) onto the
/// real cluster and back. One tick's worth of decisions is applied via
/// launch / shrink_job / complete, and the applications observe every change
/// through `poll_drom`.
#[test]
fn malleable_policy_decisions_apply_through_the_drom_machinery() {
    let cluster = Arc::new(Cluster::marenostrum3(2));
    let srun = Srun::new(Arc::clone(&cluster), true);
    let node_names = cluster.node_names();
    let mut sched = PolicyScheduler::new(2, 16, Box::new(MalleablePolicy::default()));

    // Job 1: malleable, both nodes, full width, one 16-thread task per node.
    sched
        .submit(QueuedJob::from_spec(
            &JobSpec::new(1, "simulation")
                .with_tasks(2)
                .with_threads_per_task(16)
                .with_nodes(2),
        ))
        .unwrap();
    let applied = sched.tick(0).unwrap();
    assert_eq!(applied.len(), 1);
    let SchedulerAction::Start {
        node_indices,
        cpus_per_node,
        ..
    } = &applied[0]
    else {
        panic!("expected a start, got {applied:?}");
    };
    assert_eq!(cpus_per_node, &16);
    let alloc_nodes: Vec<String> = node_indices
        .iter()
        .map(|&i| node_names[i].clone())
        .collect();
    let launched_sim = srun
        .launch(
            &JobSpec::new(1, "simulation").with_tasks(2).with_nodes(2),
            &alloc_nodes,
        )
        .unwrap();
    let sim_procs: Vec<Arc<DromProcess>> = launched_sim
        .tasks
        .iter()
        .map(|t| {
            Arc::new(
                DromProcess::init_from_environ(&t.environ, cluster.shmem(&t.node).unwrap())
                    .unwrap(),
            )
        })
        .collect();
    assert_eq!(launched_sim.total_cpus(), 32);

    // Job 2 arrives: rigid, one node, half width. The policy shrinks job 1.
    sched
        .submit(QueuedJob::from_spec(
            &JobSpec::new(2, "analytics")
                .with_tasks(1)
                .with_threads_per_task(8)
                .rigid(),
        ))
        .unwrap();
    let applied = sched.tick(10).unwrap();
    // First the shrink of job 1, then the start of job 2.
    assert!(matches!(
        applied[0],
        SchedulerAction::Resize {
            job_id: 1,
            cpus_per_node: 8
        }
    ));
    let SchedulerAction::Start {
        job_id: 2,
        node_indices,
        cpus_per_node: 8,
    } = &applied[1]
    else {
        panic!("expected job 2 to start at width 8, got {:?}", applied[1]);
    };
    let ana_node = node_names[node_indices[0]].clone();

    // Apply the shrink through the pending-mask machinery on every node job 1
    // occupies, then launch job 2 into the freed CPUs.
    assert_eq!(srun.shrink(&launched_sim, 8).unwrap(), 16);
    // Tasks observe the shrink at their next malleability point.
    for proc in &sim_procs {
        assert_eq!(proc.poll_drom().unwrap().unwrap().count(), 8);
    }
    let ana_spec = JobSpec::new(2, "analytics")
        .with_tasks(1)
        .with_threads_per_task(8)
        .rigid();
    let launched_ana = srun
        .launch(&ana_spec, std::slice::from_ref(&ana_node))
        .unwrap();
    let ana_proc = DromProcess::init_from_environ(
        &launched_ana.tasks[0].environ,
        cluster.shmem(&ana_node).unwrap(),
    )
    .unwrap();
    assert_eq!(ana_proc.num_cpus(), 8);
    // No further shrink was needed: job 1 already vacated the CPUs.
    for proc in &sim_procs {
        assert!(proc.poll_drom().unwrap().is_none());
        assert_eq!(proc.num_cpus(), 8);
    }

    // Job 2 completes. The policy re-expands job 1; on the real path the
    // expansion is release_resources redistributing the freed CPUs — once on
    // the analytics node (done by `complete`) and once on the node the
    // earlier shrink vacated without anyone moving in.
    ana_proc.finalize().unwrap();
    srun.complete(&launched_ana).unwrap();
    sched.job_finished(2).unwrap();
    let applied = sched.tick(100).unwrap();
    assert!(
        applied.contains(&SchedulerAction::Resize {
            job_id: 1,
            cpus_per_node: 16
        }),
        "the policy re-expands job 1: {applied:?}"
    );
    for node in &node_names {
        srun.slurmd(node).unwrap().release_resources(2).unwrap();
    }
    for proc in &sim_procs {
        proc.poll_drom().unwrap();
        assert_eq!(proc.num_cpus(), 16, "job 1 is whole again on every node");
    }
    // Scheduler bookkeeping agrees with the registry.
    assert_eq!(sched.running().len(), 1);
    assert_eq!(sched.running()[0].alloc.cpus_per_node, 16);
    assert_eq!(sched.stats().shrinks, 1);
    assert_eq!(sched.stats().expands, 1);

    srun.complete(&launched_sim).unwrap();
}
