//! Property-based tests of the stack-wide invariants DROM must preserve:
//! whatever sequence of administrator operations is applied, the node is never
//! oversubscribed and no registered process is ever starved.

use std::sync::Arc;

use proptest::prelude::*;

use drom::core::{DromAdmin, DromError, DromFlags, DromProcess};
use drom::cpuset::distribution::{co_allocate, DistributionPolicy, RunningTask};
use drom::cpuset::{CpuSet, Topology};
use drom::shmem::NodeShmem;

/// An administrator / application action drawn by proptest.
///
/// DROM (administrator-driven) actions and LeWI (application-driven lending)
/// actions are exercised in *separate* sequences: DLB dedicates a process to
/// one policy at a time, and mixing an administrator regrow with concurrent
/// lending of the same CPUs is explicitly outside the paper's model.
#[derive(Debug, Clone)]
enum Action {
    /// Shrink or grow process `idx % nprocs` to `cpus` CPUs (steal allowed).
    SetMask { idx: usize, cpus: usize },
    /// Poll process `idx % nprocs`.
    Poll { idx: usize },
    /// Lend the upper half of the CPUs of process `idx % nprocs`.
    Lend { idx: usize },
    /// Borrow up to `cpus` CPUs for process `idx % nprocs`.
    Borrow { idx: usize, cpus: usize },
    /// Reclaim the owned CPUs of process `idx % nprocs`.
    Reclaim { idx: usize },
}

fn drom_action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..4, 1usize..16).prop_map(|(idx, cpus)| Action::SetMask { idx, cpus }),
        (0usize..4).prop_map(|idx| Action::Poll { idx }),
    ]
}

fn lewi_action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..4).prop_map(|idx| Action::Poll { idx }),
        (0usize..4).prop_map(|idx| Action::Lend { idx }),
        (0usize..4, 1usize..8).prop_map(|(idx, cpus)| Action::Borrow { idx, cpus }),
        (0usize..4).prop_map(|idx| Action::Reclaim { idx }),
    ]
}

/// The *target* state must never be oversubscribed: no two effective masks
/// (pending if posted, current otherwise) may overlap, and no registered
/// process may be left with an empty effective mask.
fn check_invariants(shmem: &NodeShmem, procs: &[Arc<DromProcess>]) -> Result<(), TestCaseError> {
    let mut seen = CpuSet::new();
    for proc in procs {
        let mask = shmem.effective_mask(proc.pid()).unwrap();
        prop_assert!(
            seen.is_disjoint(&mask),
            "oversubscription detected: {} overlaps {}",
            mask,
            seen
        );
        seen = seen.union(&mask);
        prop_assert!(!mask.is_empty(), "process {} was starved", proc.pid());
    }
    prop_assert!(seen.count() <= shmem.node_cpus());
    Ok(())
}

fn make_node() -> (Arc<NodeShmem>, Vec<Arc<DromProcess>>) {
    let shmem = Arc::new(NodeShmem::new("node0", 16));
    // Four processes, four CPUs each.
    let procs: Vec<Arc<DromProcess>> = (0..4u32)
        .map(|i| {
            Arc::new(
                DromProcess::init(
                    i + 1,
                    CpuSet::from_range(i as usize * 4..(i as usize + 1) * 4).unwrap(),
                    Arc::clone(&shmem),
                )
                .unwrap(),
            )
        })
        .collect();
    (shmem, procs)
}

fn apply_action(
    action: &Action,
    admin: &DromAdmin,
    procs: &[Arc<DromProcess>],
) -> Result<(), DromError> {
    match action {
        Action::SetMask { idx, cpus } => {
            let target = &procs[idx % procs.len()];
            // Keep the target's first CPU and extend upward so every request is
            // anchored in CPUs the process may own.
            let first = target.current_mask().first().unwrap_or(0);
            let wanted: CpuSet = (first..16).take((*cpus).max(1)).collect();
            admin
                .set_process_mask(target.pid(), &wanted, DromFlags::default().with_steal())
                .map(|_| ())
        }
        Action::Poll { idx } => procs[idx % procs.len()].poll_drom().map(|_| ()),
        Action::Lend { idx } => {
            let p = &procs[idx % procs.len()];
            let mask = p.current_mask();
            let keep = mask.truncated(mask.count() / 2 + 1);
            p.lend_cpus(&mask.difference(&keep)).map(|_| ())
        }
        Action::Borrow { idx, cpus } => procs[idx % procs.len()].borrow_cpus(*cpus).map(|_| ()),
        Action::Reclaim { idx } => procs[idx % procs.len()].reclaim_cpus().map(|_| ()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random administrator (DROM) action sequences keep the node consistent.
    #[test]
    fn random_admin_actions_never_oversubscribe(actions in proptest::collection::vec(drom_action_strategy(), 1..40)) {
        let (shmem, procs) = make_node();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        for action in actions {
            // Rejected operations (permission, pending-dirty, would-starve …)
            // are legitimate outcomes; the invariant is about accepted state.
            let _ = apply_action(&action, &admin, &procs);
            check_invariants(&shmem, &procs)?;
        }
        // After everyone polls, the pending updates are drained and the node
        // is still consistent.
        for p in &procs {
            let _ = p.poll_drom();
        }
        check_invariants(&shmem, &procs)?;
    }

    /// Random LeWI (lend/borrow/reclaim) action sequences keep the node
    /// consistent as well.
    #[test]
    fn random_lewi_actions_never_oversubscribe(actions in proptest::collection::vec(lewi_action_strategy(), 1..40)) {
        let (shmem, procs) = make_node();
        let admin = DromAdmin::attach(Arc::clone(&shmem));
        for action in actions {
            let _ = apply_action(&action, &admin, &procs);
            check_invariants(&shmem, &procs)?;
        }
        for p in &procs {
            let _ = p.poll_drom();
        }
        check_invariants(&shmem, &procs)?;
    }

    /// The task/affinity co-allocation never oversubscribes, never starves a
    /// task and never exceeds the node, for arbitrary node shapes.
    #[test]
    fn co_allocation_is_always_a_valid_partition(
        sockets in 1usize..4,
        cores in 2usize..16,
        running_tasks in 1usize..5,
        new_tasks in 1usize..5,
    ) {
        let topo = Topology::homogeneous(sockets, cores, 64).unwrap();
        let node = topo.node_mask();
        prop_assume!(running_tasks + new_tasks <= node.count());
        let initial = drom::cpuset::distribution::equipartition(
            &node, running_tasks, &topo, DistributionPolicy::SocketAware);
        let running: Vec<RunningTask> = initial
            .into_iter()
            .enumerate()
            .map(|(i, mask)| RunningTask { job_id: 1, task_id: i, mask })
            .collect();
        let plan = co_allocate(&node, &running, new_tasks, &topo, DistributionPolicy::SocketAware);
        prop_assert!(plan.is_disjoint());
        prop_assert!(plan.total_mask().is_subset_of(&node));
        for task in &plan.updated_running {
            prop_assert!(!task.mask.is_empty(), "running task starved");
        }
        let placed_new = plan.new_tasks.iter().filter(|m| !m.is_empty()).count();
        prop_assert!(placed_new >= 1, "at least one new task must receive CPUs");
    }
}
