//! End-to-end integration test of use case 1 (in-situ analytics) on the real
//! execution path: SLURM-like launcher + DROM + OpenMP-like runtime + the
//! NEST/Pils mini-apps, across two simulated nodes.

use std::sync::Arc;

use drom::apps::{NestSim, Pils, Table1};
use drom::core::DromProcess;
use drom::ompsim::{DromOmptTool, OmpRuntime};
use drom::slurm::{Cluster, JobSpec, Srun};

/// The full co-allocation cycle: launch the simulation, co-allocate the
/// analytics, observe the shrink, complete the analytics, observe the
/// expansion.
#[test]
fn in_situ_analytics_shrinks_and_restores_the_simulation() {
    let cluster = Arc::new(Cluster::marenostrum3(2));
    let srun = Srun::new(Arc::clone(&cluster), true);
    let nodes = cluster.node_names();

    // Simulation: NEST Conf. 1 — one 16-thread task per node.
    let sim_spec = JobSpec::new(1, "NEST Conf. 1").with_tasks(2).with_nodes(2);
    let launched_sim = srun.launch(&sim_spec, &nodes).unwrap();
    assert_eq!(launched_sim.tasks.len(), 2);
    assert_eq!(launched_sim.total_cpus(), 32);

    let sim_ranks: Vec<(Arc<DromProcess>, OmpRuntime, Arc<DromOmptTool>)> = launched_sim
        .tasks
        .iter()
        .map(|task| {
            let shmem = cluster.shmem(&task.node).unwrap();
            let process = Arc::new(DromProcess::init_from_environ(&task.environ, shmem).unwrap());
            let runtime = OmpRuntime::new(16);
            let tool = DromOmptTool::attach(&runtime, Arc::clone(&process));
            (process, runtime, tool)
        })
        .collect();

    let nest = NestSim::new(Table1::NEST_CONF1).scaled(2, 300);
    for (i, (_, runtime, tool)) in sim_ranks.iter().enumerate() {
        let report = nest.run_rank(runtime, Some(tool), None, i);
        assert_eq!(report.team_sizes, vec![16, 16], "full node before sharing");
    }

    // Analytics: Pils Conf. 3 — one 4-thread task per node, co-allocated.
    let ana_spec = JobSpec::new(2, "Pils Conf. 3").with_tasks(2).with_nodes(2);
    let launched_ana = srun.launch(&ana_spec, &nodes).unwrap();
    assert_eq!(launched_ana.tasks.len(), 2);
    for task in &launched_ana.tasks {
        assert_eq!(task.mask.count(), 8, "fair share of the node");
    }

    // The simulation's next iterations run on the reduced team.
    for (i, (process, runtime, tool)) in sim_ranks.iter().enumerate() {
        let report = nest.run_rank(runtime, Some(tool), None, i);
        assert!(
            report.team_sizes.iter().all(|&t| t == 8),
            "rank {i} should run on 8 threads while sharing, got {:?}",
            report.team_sizes
        );
        assert_eq!(process.num_cpus(), 8);
    }

    // The analytics runs to completion on its own slice and is cleaned up.
    let pils = Pils::new(Table1::PILS_CONF3).scaled(2, 16, 500);
    for task in &launched_ana.tasks {
        let shmem = cluster.shmem(&task.node).unwrap();
        let process = Arc::new(DromProcess::init_from_environ(&task.environ, shmem).unwrap());
        let runtime = OmpRuntime::new(16);
        let tool = DromOmptTool::attach(&runtime, Arc::clone(&process));
        let report = pils.run_rank(&runtime, Some(&tool));
        assert_eq!(report.packages_done, 32);
        assert!(report.team_sizes.iter().all(|&t| t == 8));
        process.finalize().unwrap();
    }
    srun.complete(&launched_ana).unwrap();

    // The simulation gets its CPUs back at the next malleability point.
    for (i, (process, runtime, tool)) in sim_ranks.iter().enumerate() {
        let report = nest.run_rank(runtime, Some(tool), None, i);
        assert!(
            report.team_sizes.contains(&16),
            "rank {i} should be back to 16 threads, got {:?}",
            report.team_sizes
        );
        assert_eq!(process.num_cpus(), 16);
    }

    // Tear down.
    for (process, _, _) in &sim_ranks {
        process.finalize().unwrap();
    }
    srun.complete(&launched_sim).unwrap();
    for node in &nodes {
        assert!(srun.slurmd(node).unwrap().running_jobs().is_empty());
        assert_eq!(cluster.shmem(node).unwrap().pid_list().len(), 0);
    }
}

/// The baseline (DROM disabled) refuses co-allocation, forcing the Serial
/// behaviour the paper compares against.
#[test]
fn without_drom_the_analytics_must_wait() {
    let cluster = Arc::new(Cluster::marenostrum3(2));
    let srun = Srun::new(Arc::clone(&cluster), false);
    let nodes = cluster.node_names();

    let sim_spec = JobSpec::new(1, "simulation").with_tasks(2).with_nodes(2);
    let launched_sim = srun.launch(&sim_spec, &nodes).unwrap();

    let ana_spec = JobSpec::new(2, "analytics").with_tasks(2).with_nodes(2);
    let err = srun.launch(&ana_spec, &nodes).unwrap_err();
    assert!(matches!(err, drom::slurm::SlurmError::NodeBusy { .. }));

    // Once the simulation completes, the analytics can start and gets the
    // whole machine.
    srun.complete(&launched_sim).unwrap();
    let launched_ana = srun.launch(&ana_spec, &nodes).unwrap();
    assert_eq!(launched_ana.total_cpus(), 32);
}
