//! Workload-level acceptance tests: the qualitative claims of every evaluation
//! figure must hold for the whole configuration sweep, not just the single
//! pairs exercised by the unit tests.

use drom::apps::{AppKind, Table1};
use drom::metrics::workload::percent_improvement;
use drom::metrics::Scenario;
use drom::sim::{in_situ_workload, WorkloadSimulator};

const ANALYTICS_DELAY_S: f64 = 100.0;

/// Figures 4, 6–12: for every (simulator, analytics) pair of Table 1, DROM
/// must not lose on total run time, must collapse the analytics response time,
/// must only mildly degrade the simulation, and must strongly improve the
/// average response time.
#[test]
fn use_case_1_claims_hold_across_the_whole_sweep() {
    for simulator in [AppKind::Nest, AppKind::CoreNeuron] {
        for sim_config in Table1::of(simulator) {
            for ana_config in Table1::analytics() {
                let workload = in_situ_workload(sim_config, ana_config, ANALYTICS_DELAY_S);
                let serial = WorkloadSimulator::new(Scenario::Serial).run(&workload);
                let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
                let label = format!("{} + {}", sim_config.label(), ana_config.label());

                // Figure 4 / 9: total run time never regresses.
                let rt = percent_improvement(
                    serial.report.total_run_time() as f64,
                    drom.report.total_run_time() as f64,
                );
                assert!(rt > -0.5, "{label}: total run time regressed by {rt:.1}%");
                assert!(rt < 25.0, "{label}: unrealistically large gain {rt:.1}%");

                // Figures 6 / 7 / 10 / 11: the analytics response collapses
                // (its queue wait disappears) …
                let ana_name = &workload[1].name;
                let ana = percent_improvement(
                    serial.report.response_time_of(ana_name).unwrap() as f64,
                    drom.report.response_time_of(ana_name).unwrap() as f64,
                );
                assert!(ana > 60.0, "{label}: analytics only improved {ana:.1}%");

                // … while the simulation degrades by at most ~12% even in the
                // adversarial full-node pairs (the paper's worst case is 6.7%
                // for its scaled-down analytics).
                let sim_name = &workload[0].name;
                let sim = percent_improvement(
                    serial.report.response_time_of(sim_name).unwrap() as f64,
                    drom.report.response_time_of(sim_name).unwrap() as f64,
                );
                assert!(sim <= 0.5, "{label}: the simulation cannot get faster");
                assert!(sim > -12.0, "{label}: simulation degraded {:.1}%", -sim);

                // Figure 8 / 12: average response time improves by tens of %.
                let avg = percent_improvement(
                    serial.report.average_response_time(),
                    drom.report.average_response_time(),
                );
                assert!(
                    (30.0..55.0).contains(&avg),
                    "{label}: average response improvement {avg:.1}% outside the paper's band"
                );
            }
        }
    }
}

/// The DROM scenario is work-conserving: the machine never sits idle while a
/// job is pending, so the makespan is monotone under earlier submission of the
/// analytics job.
#[test]
fn earlier_analytics_submission_never_hurts_the_makespan() {
    let mut previous = f64::INFINITY;
    for delay in [1000.0, 500.0, 100.0] {
        let workload = in_situ_workload(Table1::NEST_CONF1, Table1::PILS_CONF3, delay);
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        let makespan = drom.report.total_run_time() as f64;
        assert!(
            makespan <= previous + 1.0,
            "submitting the analytics earlier (delay {delay}s) increased the makespan"
        );
        previous = makespan;
    }
}

/// The oversubscription baseline (CPUSET-only co-allocation, the related-work
/// approach DROM argues against) loses to DROM when the co-allocated job asks
/// for a substantial share of the node (Pils Conf. 1, the full-node analytics).
/// For a one-CPU analytics (Pils Conf. 2) mild oversubscription can be
/// competitive — the paper's argument targets the heavy-sharing case.
#[test]
fn oversubscription_loses_to_drom_under_heavy_sharing() {
    for sim_config in Table1::of(AppKind::Nest) {
        let ana_config = Table1::PILS_CONF1;
        let workload = in_situ_workload(sim_config, ana_config, ANALYTICS_DELAY_S);
        let drom = WorkloadSimulator::new(Scenario::Drom).run(&workload);
        let oversub = WorkloadSimulator::new(Scenario::Oversubscribed).run(&workload);
        assert!(
            oversub.report.total_run_time() as f64 >= drom.report.total_run_time() as f64 * 0.999,
            "{} + {}: oversubscription unexpectedly beat DROM",
            sim_config.label(),
            ana_config.label()
        );
        assert!(
            oversub.report.average_response_time() >= drom.report.average_response_time() * 0.999,
            "{}: oversubscription unexpectedly improved the average response",
            sim_config.label()
        );
    }
}
